"""Command-line entry points for the streaming subsystem.

Three subcommands cover the stream lifecycle::

    # generate a drifting stream, run the engine over it, checkpoint
    python -m repro.stream run --checkpoint ck/ --n-batches 40 \\
        --drift mean_shift --drift-batch 20 --seed 0

    # resume a checkpointed stream and continue where it stopped
    python -m repro.stream replay --checkpoint ck/ --n-batches 20

    # look inside a checkpoint (engine state + model artifact)
    python -m repro.stream inspect --checkpoint ck/ --json

``run`` fits the initial model on a warmup block drawn from the
pre-drift populations, then drives every batch through
:class:`~repro.stream.engine.StreamingSSPC`, reporting per-phase
accuracy (the generator carries ground truth) and every adaptation
event.  The stream recipe is recorded in the checkpoint metadata, which
is what lets ``replay`` regenerate the exact same stream and continue
from the stored batch position — batches are a pure function of
``(seed, batch_index)``, so a resumed run is bit-identical to an
uninterrupted one.  The same console script is installed as
``repro-stream`` (see ``pyproject.toml``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.backends import BACKEND_NAMES
from repro.data.streams import DriftingStreamGenerator, make_drift_schedule
from repro.evaluation import adjusted_rand_index
from repro.stream.checkpoint import checkpoint_metadata, describe_checkpoint, load_checkpoint
from repro.stream.engine import StreamConfig, StreamingSSPC

__all__ = ["main", "build_parser"]

_DRIFT_KINDS = ("none", "mean_shift", "dimension_drift", "birth", "death", "mixed")


# ---------------------------------------------------------------------- #
# stream recipe <-> generator
# ---------------------------------------------------------------------- #
def _stream_spec_from_args(args: argparse.Namespace) -> Dict[str, object]:
    """The JSON-safe stream recipe recorded in checkpoint metadata."""
    return {
        "n_dimensions": int(args.n_dimensions),
        "n_clusters": int(args.n_clusters),
        "avg_cluster_dimensionality": int(args.cluster_dim),
        "outlier_fraction": float(args.outlier_fraction),
        "drift": str(args.drift),
        "drift_batch": int(args.drift_batch),
        "drift_cluster": int(args.drift_cluster),
        "drift_magnitude": float(args.drift_magnitude),
        "batch_size": int(args.batch_size),
        "seed": int(args.seed),
    }


def _generator_from_spec(spec: Dict[str, object]) -> DriftingStreamGenerator:
    return DriftingStreamGenerator(
        n_dimensions=int(spec["n_dimensions"]),
        n_clusters=int(spec["n_clusters"]),
        avg_cluster_dimensionality=int(spec["avg_cluster_dimensionality"]),
        outlier_fraction=float(spec["outlier_fraction"]),
        events=make_drift_schedule(
            str(spec["drift"]),
            drift_batch=int(spec["drift_batch"]),
            cluster=int(spec["drift_cluster"]),
            magnitude=float(spec["drift_magnitude"]),
        ),
        random_state=int(spec["seed"]),
    )


def _config_from_args(args: argparse.Namespace) -> StreamConfig:
    return StreamConfig(
        outlier_buffer_size=args.buffer_size,
        lifecycle_every=args.lifecycle_every,
        spawn_min_points=args.spawn_min_points,
        max_clusters=args.max_clusters,
        drift_check_every=args.drift_every,
        drift_zscore=args.drift_zscore,
        projection_window=args.projection_window,
        seed=args.seed,
    )


def _drive(
    engine: StreamingSSPC,
    generator: DriftingStreamGenerator,
    n_batches: int,
    batch_size: int,
    *,
    start: int,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """Process ``n_batches`` stream batches; returns per-batch records."""
    records: List[Dict[str, object]] = []
    for batch in generator.batches(n_batches, batch_size, start=start):
        result = engine.process_batch(batch.data)
        clustered = batch.labels >= 0
        ari = (
            adjusted_rand_index(batch.labels[clustered], result.labels[clustered])
            if np.any(clustered)
            else float("nan")
        )
        records.append(
            {
                "batch": int(batch.index),
                "ari": float(ari),
                "n_assigned": int(result.n_assigned),
                "n_outliers": int(result.n_outliers),
                "events": [event.to_dict() for event in result.events],
            }
        )
        if not quiet:
            for event in result.events:
                print(
                    "  [batch %d] %s cluster %d %s"
                    % (batch.index, event.kind, event.cluster_id, event.details),
                    file=sys.stderr,
                )
    return records


def _print_summary(engine: StreamingSSPC, records: List[Dict[str, object]]) -> None:
    aris = [record["ari"] for record in records if not np.isnan(record["ari"])]
    print("processed %d batches (%d points total)" % (len(records), engine.n_points))
    print("  live clusters      : %d (ids %s)" % (engine.n_clusters, engine.cluster_ids))
    print(
        "  adaptation         : %d spawned, %d retired, %d drift refreshes"
        % (engine.n_spawned, engine.n_retired, engine.n_drift_refreshes)
    )
    print("  outlier buffer     : %r" % engine.outliers)
    if aris:
        print("  mean batch ARI     : %.3f (last %.3f)" % (float(np.mean(aris)), aris[-1]))


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.sspc import SSPC

    spec = _stream_spec_from_args(args)
    generator = _generator_from_spec(spec)
    warmup = generator.warmup(args.warmup)
    log_stderr = lambda message: print(message, file=sys.stderr)  # noqa: E731
    with obs.trace_session(args.trace, args.metrics_out, log=log_stderr):
        model = SSPC(
            n_clusters=args.n_clusters,
            m=args.m,
            max_iterations=args.fit_iterations,
            random_state=args.seed,
        ).fit(warmup.data)
        engine = StreamingSSPC(
            model.to_artifact(), config=_config_from_args(args), backend=args.backend
        )
        print(
            "fitted initial model on %d warmup points (k=%d); streaming %d batches of %d"
            % (warmup.data.shape[0], engine.n_clusters, args.n_batches, args.batch_size),
            file=sys.stderr,
        )
        records = _drive(
            engine, generator, args.n_batches, args.batch_size, start=0, quiet=args.quiet
        )
    _print_summary(engine, records)
    if args.checkpoint:
        engine.checkpoint(args.checkpoint, metadata={"stream": spec})
        print("checkpoint written to %s" % args.checkpoint)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump({"stream": spec, "batches": records}, handle, indent=2)
        print("report written to %s" % args.report, file=sys.stderr)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    engine = load_checkpoint(args.checkpoint, backend=args.backend)
    spec = checkpoint_metadata(args.checkpoint).get("stream")
    if not isinstance(spec, dict):
        print(
            "replay: checkpoint has no recorded stream recipe "
            "(it was not written by `repro-stream run`)",
            file=sys.stderr,
        )
        return 2
    generator = _generator_from_spec(spec)
    batch_size = args.batch_size if args.batch_size is not None else int(spec["batch_size"])
    start = engine.n_batches
    print(
        "resuming stream at batch %d for %d more batches of %d"
        % (start, args.n_batches, batch_size),
        file=sys.stderr,
    )
    records = _drive(
        engine, generator, args.n_batches, batch_size, start=start, quiet=args.quiet
    )
    _print_summary(engine, records)
    target = args.output if args.output else args.checkpoint
    engine.checkpoint(target, metadata={"stream": spec})
    print("checkpoint written to %s" % target)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    description = describe_checkpoint(args.checkpoint)
    if args.json:
        json.dump(description, sys.stdout, indent=2, sort_keys=True, default=str)
        print()
        return 0
    model = description["model"]
    print("stream checkpoint (schema v%d)" % description["schema_version"])
    print("  stream position : batch %d (%d points)"
          % (description["n_batches"], description["n_points"]))
    print("  live clusters   : %d (stable ids %s)"
          % (len(description["cluster_ids"]), description["cluster_ids"]))
    print("  cluster sizes   : %s" % model["cluster_sizes"])
    print("  adaptation      : %d spawned, %d retired, %d drift refreshes"
          % (description["n_spawned"], description["n_retired"],
             description["n_drift_refreshes"]))
    print("  outlier buffer  : %d rows" % description["outliers_buffered"])
    print("  threshold       : %s" % model["threshold"])
    if description["events"]:
        print("  events          :")
        for event in description["events"]:
            print("    batch %-5d %-7s cluster %d"
                  % (event["batch_index"], event["kind"], event["cluster_id"]))
    if description["metadata"]:
        print("  metadata        : %s" % description["metadata"])
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    engine = parser.add_argument_group("engine")
    engine.add_argument("--buffer-size", type=int, default=1024,
                        help="outlier-buffer capacity (default 1024)")
    engine.add_argument("--lifecycle-every", type=int, default=8,
                        help="batches between spawn/retire sweeps (0 disables)")
    engine.add_argument("--spawn-min-points", type=int, default=24,
                        help="dense-peak size required to spawn a cluster")
    engine.add_argument("--max-clusters", type=int, default=None,
                        help="hard cap on live clusters")
    engine.add_argument("--drift-every", type=int, default=4,
                        help="batches between drift checks (0 disables)")
    engine.add_argument("--drift-zscore", type=float, default=8.0,
                        help="shift-statistic threshold flagging drift")
    engine.add_argument("--projection-window", type=int, default=None,
                        help="bound each cluster's projection buffer (window medians)")
    engine.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="assignment-kernel backend (default: "
                             "$REPRO_ASSIGNMENT_BACKEND or reference)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Online projected clustering over drifting streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="generate a drifting stream and run the engine")
    stream = run.add_argument_group("stream")
    stream.add_argument("--n-batches", type=int, default=40)
    stream.add_argument("--batch-size", type=int, default=200)
    stream.add_argument("--n-dimensions", type=int, default=60)
    stream.add_argument("--n-clusters", type=int, default=4)
    stream.add_argument("--cluster-dim", type=int, default=8,
                        help="average relevant dimensions per cluster")
    stream.add_argument("--outlier-fraction", type=float, default=0.05)
    stream.add_argument("--drift", choices=_DRIFT_KINDS, default="mean_shift")
    stream.add_argument("--drift-batch", type=int, default=20,
                        help="batch index at which the drift event fires")
    stream.add_argument("--drift-cluster", type=int, default=0)
    stream.add_argument("--drift-magnitude", type=float, default=0.3)
    stream.add_argument("--seed", type=int, default=0)
    fit = run.add_argument_group("initial fit")
    fit.add_argument("--warmup", type=int, default=1200,
                     help="pre-stream points the initial model is fitted on")
    fit.add_argument("--fit-iterations", type=int, default=8)
    fit.add_argument("--m", type=float, default=0.5)
    _add_engine_arguments(run)
    run.add_argument("--checkpoint", default=None, help="checkpoint directory to write")
    run.add_argument("--report", default=None, help="per-batch JSON report path")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON of the run (Perfetto)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write a checksummed metrics snapshot of the run")
    run.add_argument("--quiet", action="store_true", help="suppress per-event logging")
    run.set_defaults(func=_cmd_run)

    replay = commands.add_parser("replay", help="resume a checkpointed stream")
    replay.add_argument("--checkpoint", required=True, help="checkpoint directory")
    replay.add_argument("--n-batches", type=int, default=20,
                        help="additional batches to process")
    replay.add_argument("--batch-size", type=int, default=None,
                        help="override the recorded batch size")
    replay.add_argument("--output", default=None,
                        help="write the continued checkpoint elsewhere "
                             "(default: back into --checkpoint)")
    replay.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="assignment-kernel backend for the restored engine")
    replay.add_argument("--quiet", action="store_true")
    replay.set_defaults(func=_cmd_replay)

    inspect = commands.add_parser("inspect", help="describe a stream checkpoint")
    inspect.add_argument("--checkpoint", required=True, help="checkpoint directory")
    inspect.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    inspect.set_defaults(func=_cmd_inspect)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``repro-stream`` / ``python -m repro.stream``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
