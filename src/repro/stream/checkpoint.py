"""Checkpoint / restore for the streaming engine.

A checkpoint directory holds *generations* plus a commit pointer::

    <checkpoint>/
        CURRENT                 # name of the committed generation (written last)
        gen-00000007/
            model/              # ModelArtifact (manifest + arrays)
            stream_state.json   # engine state, self-checksummed, written last
            stream_arrays.npz   # float buffers, checksummed in the state
        gen-00000008/

Each generation is a complete, self-contained checkpoint:

* ``model/`` — the live clustering as a standard
  :class:`~repro.serving.artifact.ModelArtifact` (the same format
  ``repro-serve`` fits, inspects and serves).  While the engine has not
  adapted (no spawn / retire / drift refresh), the artifact is produced
  by folding the updated statistics back into the *source* artifact
  (:meth:`~repro.serving.index.ProjectedClusterIndex.fold_into` +
  ``save``), preserving the original training members and labels;
  after any adaptation the current serving state is exported fresh
  (:meth:`~repro.serving.index.ProjectedClusterIndex.export_artifact`).
* ``stream_state.json`` — schema-versioned engine state: configuration,
  stable cluster ids, counters, the event log, free-form metadata (the
  CLI records the stream recipe here so ``replay`` can resume) and a
  SHA-256 checksum per array buffer.
* ``stream_arrays.npz`` — every float buffer at full precision: the
  outlier buffer, each cluster's recent window and reference
  statistics, and the running global statistics.

Durability protocol: a generation is staged in a temp directory and
renamed into place as a unit; only then is ``CURRENT`` atomically
rewritten to point at it — the single commit point.  A kill anywhere
mid-save leaves ``CURRENT`` on the previous generation, so a restored
engine resumes bit-identically from the last *committed* batch
boundary.  :func:`load_checkpoint` verifies every checksum and
automatically rolls back to the newest intact generation when the
pointed-at one is damaged (raising a typed
:class:`~repro.reliability.integrity.IntegrityError` only when *no*
generation survives).  The last :data:`RETAIN_GENERATIONS` generations
are retained; older ones are pruned at save time.  Legacy flat
checkpoints (state files at the directory root, schema 1) still load.

Everything round-trips bit for bit, so a restored engine continues the
stream exactly as if it had never stopped — the streaming analogue of
:mod:`repro.bench`'s resumable run store.
"""

from __future__ import annotations

import io
import json
import shutil
import zipfile
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.reliability import (
    IntegrityError,
    TEMP_MARKER,
    atomic_write_bytes,
    atomic_write_dir,
    atomic_write_json,
    checksum_arrays,
    remove_stale_temps,
    require_key,
    verify_array_checksums,
    verify_stamp,
)
from repro.serving.artifact import load_artifact

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro-sspc-stream-checkpoint"
SCHEMA_VERSION = 2
MODEL_DIR = "model"
STATE_NAME = "stream_state.json"
ARRAYS_NAME = "stream_arrays.npz"
CURRENT_NAME = "CURRENT"
GENERATION_PREFIX = "gen-"
#: Committed generations kept on disk (current + rollback target).
RETAIN_GENERATIONS = 2

__all__ = [
    "CHECKPOINT_FORMAT",
    "CURRENT_NAME",
    "GENERATION_PREFIX",
    "RETAIN_GENERATIONS",
    "SCHEMA_VERSION",
    "checkpoint_metadata",
    "describe_checkpoint",
    "load_checkpoint",
    "resolve_checkpoint_dir",
    "save_checkpoint",
]


def _can_fold_into_source(engine) -> bool:
    """Whether the source artifact still matches the serving structure."""
    source = engine._source_artifact
    if engine.adapted or source is None:
        return False
    if len(source.clusters) != engine.index.n_clusters:
        return False
    for position, cluster in enumerate(source.clusters):
        served = engine.index.cluster_statistics(position)
        if not np.array_equal(cluster.dimensions, served.dimensions):
            return False
    return True


def _generation_dirs(directory: Path) -> List[Path]:
    """Committed generation directories, oldest first."""
    if not directory.is_dir():
        return []
    generations = [
        entry
        for entry in directory.iterdir()
        if entry.is_dir()
        and entry.name.startswith(GENERATION_PREFIX)
        and TEMP_MARKER not in entry.name
    ]
    return sorted(generations, key=lambda entry: entry.name)


def _generation_number(name: str) -> int:
    try:
        return int(name[len(GENERATION_PREFIX):])
    except ValueError:
        return -1


def _candidate_dirs(directory: Path) -> List[Path]:
    """Generation directories to try, in rollback order.

    The ``CURRENT``-pointed generation first (it is the committed one),
    then the remaining generations newest-first, then the directory
    root itself for legacy flat checkpoints.
    """
    candidates: List[Path] = []
    current_path = directory / CURRENT_NAME
    if current_path.is_file():
        try:
            name = current_path.read_text().strip()
        except OSError:
            name = ""
        pointed = directory / name
        if name and TEMP_MARKER not in name and pointed.is_dir():
            candidates.append(pointed)
    for generation in reversed(_generation_dirs(directory)):
        if generation not in candidates:
            candidates.append(generation)
    if (directory / STATE_NAME).is_file():
        candidates.append(directory)
    return candidates


def resolve_checkpoint_dir(path: PathLike) -> Path:
    """The committed generation directory of checkpoint ``path``.

    Follows ``CURRENT`` and falls back to the newest generation whose
    state verifies; for legacy flat checkpoints this is ``path`` itself.
    Raises :class:`FileNotFoundError` when ``path`` holds no checkpoint
    at all, :class:`IntegrityError` when every generation is damaged.
    """
    directory = Path(path)
    candidates = _candidate_dirs(directory)
    if not candidates:
        raise FileNotFoundError(
            "%s is not a stream checkpoint (missing %s)" % (directory, STATE_NAME)
        )
    problems: List[str] = []
    for candidate in candidates:
        try:
            _read_state(candidate)
            if problems:
                # A damaged newer generation was skipped: this resolve
                # is a rollback, worth surfacing in the event log.
                recorder = obs.get_recorder()
                if recorder is not None:
                    recorder.incr("reliability.rollbacks")
                    recorder.event(
                        "rollback",
                        checkpoint=str(directory),
                        resolved=candidate.name,
                        damaged=list(problems),
                    )
            return candidate
        except (IntegrityError, FileNotFoundError, OSError) as exc:
            problems.append("%s: %s" % (candidate.name, exc))
    raise IntegrityError(
        "no intact generation in checkpoint %s (%s)" % (directory, "; ".join(problems)),
        path=directory,
    )


def _prune_generations(directory: Path, *, keep: int) -> None:
    for generation in _generation_dirs(directory)[:-keep]:
        shutil.rmtree(generation, ignore_errors=True)


def save_checkpoint(engine, path: PathLike, *, metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write ``engine`` as a new committed generation under ``path``.

    Crash-safe: the generation is staged and renamed into place, and the
    ``CURRENT`` pointer is rewritten (atomically) only afterwards — a
    kill at any step leaves the previous generation committed.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    remove_stale_temps(directory)

    if _can_fold_into_source(engine):
        artifact = engine.index.fold_into(engine._source_artifact)
    else:
        artifact = engine.index.export_artifact()
    # fold_into accumulates (+=) and a long-lived engine may checkpoint
    # the same source artifact repeatedly; record the absolute count.
    artifact.metadata["absorbed_points"] = (
        engine._source_absorbed_base + int(engine.index.n_points_absorbed)
    )

    arrays: Dict[str, np.ndarray] = {
        "outlier_buffer": engine.outliers.rows,
        "global_mean": engine._global_mean,
        "global_variance": engine._global_variance,
    }
    for position in range(engine.index.n_clusters):
        arrays["window_%d" % position] = engine._windows[position]
        reference = engine._references[position]
        if reference is not None:
            arrays["reference_mean_%d" % position] = reference[0]
            arrays["reference_variance_%d" % position] = reference[1]

    numbers = [_generation_number(entry.name) for entry in _generation_dirs(directory)]
    generation_name = "%s%08d" % (GENERATION_PREFIX, max(numbers, default=0) + 1)

    state = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "generation": generation_name,
        "config": engine.config.to_dict(),
        "center": engine.center,
        "cluster_ids": [int(cluster_id) for cluster_id in engine.cluster_ids],
        "next_cluster_id": int(engine._next_cluster_id),
        "accepted_since_sweep": [int(count) for count in engine._accepted_since_sweep],
        "starved_sweeps": [int(count) for count in engine._starved_sweeps],
        "outliers_seen": int(engine.outliers.n_seen),
        "outliers_dropped": int(engine.outliers.n_dropped),
        "global_size": int(engine._global_size),
        "n_batches": int(engine.n_batches),
        "n_points": int(engine.n_points),
        "n_sweeps": int(engine._n_sweeps),
        "n_spawned": int(engine.n_spawned),
        "n_spawns_rejected": int(engine.n_spawns_rejected),
        "n_retired": int(engine.n_retired),
        "n_drift_refreshes": int(engine.n_drift_refreshes),
        "adapted": bool(engine.adapted),
        "events": [event.to_dict() for event in engine.events],
        "metadata": dict(metadata or {}),
        "array_checksums": checksum_arrays(arrays),
    }

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    with atomic_write_dir(directory / generation_name) as staging:
        artifact.save(staging / MODEL_DIR)
        atomic_write_bytes(staging / ARRAYS_NAME, buffer.getvalue())
        atomic_write_json(staging / STATE_NAME, state)  # state commits the generation
    # The CURRENT rewrite is the checkpoint's single commit point.
    atomic_write_bytes(directory / CURRENT_NAME, (generation_name + "\n").encode("ascii"))
    _prune_generations(directory, keep=RETAIN_GENERATIONS)
    return directory


def _read_state(directory: Path) -> Dict[str, object]:
    state_path = directory / STATE_NAME
    if not state_path.is_file():
        raise FileNotFoundError(
            "%s is not a stream checkpoint (missing %s)" % (directory, STATE_NAME)
        )
    try:
        state = json.loads(state_path.read_text())
    except ValueError as exc:
        raise IntegrityError(
            "checkpoint state %s is not valid JSON (%s): the file is corrupt "
            "or truncated" % (state_path, exc),
            path=state_path,
        ) from exc
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            "unrecognised checkpoint format %r (expected %r)"
            % (state.get("format"), CHECKPOINT_FORMAT)
        )
    if int(state.get("schema_version", -1)) > SCHEMA_VERSION:
        raise ValueError(
            "checkpoint schema_version %r is newer than this library supports (%d)"
            % (state.get("schema_version"), SCHEMA_VERSION)
        )
    # Schema >= 2 states are self-checksummed; schema-1 (legacy flat
    # layout) states carry no stamp and are accepted unverified.
    verify_stamp(state, path=state_path)
    return state


def checkpoint_metadata(path: PathLike) -> Dict[str, object]:
    """Just the free-form metadata of a checkpoint (one small JSON read).

    The ``replay`` CLI fetches the recorded stream recipe through this
    instead of :func:`describe_checkpoint`, which re-reads the whole
    model artifact and array bundle.
    """
    return dict(_read_state(resolve_checkpoint_dir(path)).get("metadata", {}))


def describe_checkpoint(path: PathLike) -> Dict[str, object]:
    """Human-readable checkpoint summary (the ``inspect`` CLI payload)."""
    directory = Path(path)
    generation = resolve_checkpoint_dir(directory)
    state = _read_state(generation)
    artifact = load_artifact(generation / MODEL_DIR)
    with np.load(generation / ARRAYS_NAME) as bundle:
        outliers_buffered = int(bundle["outlier_buffer"].shape[0])
    return {
        "format": CHECKPOINT_FORMAT,
        "schema_version": int(state["schema_version"]),
        "generation": generation.name if generation != directory else "legacy",
        "n_batches": int(state["n_batches"]),
        "n_points": int(state["n_points"]),
        "cluster_ids": list(state["cluster_ids"]),
        "n_spawned": int(state["n_spawned"]),
        "n_retired": int(state["n_retired"]),
        "n_drift_refreshes": int(state["n_drift_refreshes"]),
        "adapted": bool(state["adapted"]),
        "outliers_buffered": outliers_buffered,
        "events": list(state["events"]),
        "config": dict(state["config"]),
        "metadata": dict(state.get("metadata", {})),
        "model": artifact.describe(),
    }


def load_checkpoint(path: PathLike, *, config=None, backend=None):
    """Rebuild a :class:`~repro.stream.engine.StreamingSSPC` from ``path``.

    Tries the committed generation first and automatically rolls back
    to the newest intact one when it fails verification (corruption,
    torn write, half-deleted directory), so restore after a mid-write
    kill resumes from the last committed batch boundary.  Raises
    :class:`IntegrityError` naming every damaged generation when none
    survives.  The restored engine records which generation it came
    from in ``engine.restored_from``.

    ``config`` overrides the checkpointed :class:`StreamConfig` (e.g. to
    change adaptation knobs mid-stream); buffers sized by the old config
    are re-bounded under the new one.  ``backend`` selects the restored
    engine's assignment-kernel backend (a :mod:`repro.core.backends`
    name) — kernel choice is per-process runtime state, so it is never
    part of the checkpoint itself.
    """
    directory = Path(path)
    candidates = _candidate_dirs(directory)
    if not candidates:
        raise FileNotFoundError(
            "%s is not a stream checkpoint (missing %s)" % (directory, STATE_NAME)
        )
    problems: List[str] = []
    for candidate in candidates:
        try:
            engine = _load_generation(candidate, config=config, backend=backend)
        except (IntegrityError, FileNotFoundError, OSError) as exc:
            problems.append("%s: %s" % (candidate.name, exc))
            continue
        engine.restored_from = str(candidate)
        return engine
    raise IntegrityError(
        "no intact generation in checkpoint %s (%s)" % (directory, "; ".join(problems)),
        path=directory,
    )


def _load_generation(directory: Path, *, config=None, backend=None):
    """Restore one generation directory, verifying every checksum."""
    from repro.stream.engine import StreamConfig, StreamEvent, StreamingSSPC

    state = _read_state(directory)
    state_path = directory / STATE_NAME

    def _field(key):
        return require_key(state, key, path=state_path, kind="checkpoint state")

    artifact = load_artifact(directory / MODEL_DIR)
    engine_config = config if config is not None else StreamConfig.from_dict(_field("config"))
    engine = StreamingSSPC(
        artifact, config=engine_config, center=str(_field("center")), backend=backend
    )

    arrays_path = directory / ARRAYS_NAME
    if not arrays_path.is_file():
        raise FileNotFoundError("checkpoint arrays file %s is missing" % arrays_path)
    try:
        with np.load(arrays_path) as bundle:
            arrays = {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile, zlib.error) as exc:
        raise IntegrityError(
            "checkpoint arrays %s are unreadable (%s): the file is corrupt "
            "or truncated" % (arrays_path, exc),
            path=arrays_path,
        ) from exc
    verify_array_checksums(arrays, state.get("array_checksums") or {}, path=arrays_path)

    def _array(key):
        return require_key(arrays, key, path=arrays_path, kind="checkpoint arrays")

    cluster_ids = [int(cluster_id) for cluster_id in _field("cluster_ids")]
    if len(cluster_ids) != engine.index.n_clusters:
        raise IntegrityError(
            "checkpoint state %s names %d clusters but the model holds %d"
            % (state_path, len(cluster_ids), engine.index.n_clusters),
            path=state_path,
            payload="cluster_ids",
        )
    engine.cluster_ids = cluster_ids
    engine._next_cluster_id = int(_field("next_cluster_id"))
    engine._windows = [
        _array("window_%d" % position) for position in range(engine.index.n_clusters)
    ]
    engine._references = [
        (
            (arrays["reference_mean_%d" % position], arrays["reference_variance_%d" % position])
            if "reference_mean_%d" % position in arrays
            else None
        )
        for position in range(engine.index.n_clusters)
    ]
    engine._accepted_since_sweep = [int(count) for count in _field("accepted_since_sweep")]
    engine._starved_sweeps = [int(count) for count in _field("starved_sweeps")]
    engine.outliers.extend(_array("outlier_buffer"))
    engine.outliers.n_seen = int(_field("outliers_seen"))
    engine.outliers.n_dropped = int(_field("outliers_dropped"))
    engine._global_size = int(_field("global_size"))
    engine._global_mean = _array("global_mean")
    engine._global_variance = _array("global_variance")
    engine.n_batches = int(_field("n_batches"))
    engine.n_points = int(_field("n_points"))
    engine._n_sweeps = int(_field("n_sweeps"))
    engine.n_spawned = int(_field("n_spawned"))
    engine.n_spawns_rejected = int(state.get("n_spawns_rejected", 0))
    engine.n_retired = int(_field("n_retired"))
    engine.n_drift_refreshes = int(_field("n_drift_refreshes"))
    engine._adapted = bool(_field("adapted"))
    engine.events = [StreamEvent.from_dict(event) for event in _field("events")]
    return engine
