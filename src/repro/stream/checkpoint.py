"""Checkpoint / restore for the streaming engine.

A checkpoint is a directory:

* ``model/`` — the live clustering as a standard
  :class:`~repro.serving.artifact.ModelArtifact` (the same format
  ``repro-serve`` fits, inspects and serves).  While the engine has not
  adapted (no spawn / retire / drift refresh), the artifact is produced
  by folding the updated statistics back into the *source* artifact
  (:meth:`~repro.serving.index.ProjectedClusterIndex.fold_into` +
  ``save``), preserving the original training members and labels;
  after any adaptation the current serving state is exported fresh
  (:meth:`~repro.serving.index.ProjectedClusterIndex.export_artifact`).
* ``stream_state.json`` — schema-versioned engine state: configuration,
  stable cluster ids, counters, the event log and free-form metadata
  (the CLI records the stream recipe here so ``replay`` can resume).
* ``stream_arrays.npz`` — every float buffer at full precision: the
  outlier buffer, each cluster's recent window and reference
  statistics, and the running global statistics.

Everything round-trips bit for bit, so a restored engine continues the
stream exactly as if it had never stopped — the streaming analogue of
:mod:`repro.bench`'s resumable run store.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.serving.artifact import load_artifact

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro-sspc-stream-checkpoint"
SCHEMA_VERSION = 1
MODEL_DIR = "model"
STATE_NAME = "stream_state.json"
ARRAYS_NAME = "stream_arrays.npz"

__all__ = [
    "CHECKPOINT_FORMAT",
    "SCHEMA_VERSION",
    "checkpoint_metadata",
    "describe_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]


def _can_fold_into_source(engine) -> bool:
    """Whether the source artifact still matches the serving structure."""
    source = engine._source_artifact
    if engine.adapted or source is None:
        return False
    if len(source.clusters) != engine.index.n_clusters:
        return False
    for position, cluster in enumerate(source.clusters):
        served = engine.index.cluster_statistics(position)
        if not np.array_equal(cluster.dimensions, served.dimensions):
            return False
    return True


def save_checkpoint(engine, path: PathLike, *, metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write ``engine`` to the checkpoint directory ``path``."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    if _can_fold_into_source(engine):
        artifact = engine.index.fold_into(engine._source_artifact)
    else:
        artifact = engine.index.export_artifact()
    # fold_into accumulates (+=) and a long-lived engine may checkpoint
    # the same source artifact repeatedly; record the absolute count.
    artifact.metadata["absorbed_points"] = (
        engine._source_absorbed_base + int(engine.index.n_points_absorbed)
    )
    artifact.save(directory / MODEL_DIR)

    arrays: Dict[str, np.ndarray] = {
        "outlier_buffer": engine.outliers.rows,
        "global_mean": engine._global_mean,
        "global_variance": engine._global_variance,
    }
    for position in range(engine.index.n_clusters):
        arrays["window_%d" % position] = engine._windows[position]
        reference = engine._references[position]
        if reference is not None:
            arrays["reference_mean_%d" % position] = reference[0]
            arrays["reference_variance_%d" % position] = reference[1]

    state = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "config": engine.config.to_dict(),
        "center": engine.center,
        "cluster_ids": [int(cluster_id) for cluster_id in engine.cluster_ids],
        "next_cluster_id": int(engine._next_cluster_id),
        "accepted_since_sweep": [int(count) for count in engine._accepted_since_sweep],
        "starved_sweeps": [int(count) for count in engine._starved_sweeps],
        "outliers_seen": int(engine.outliers.n_seen),
        "outliers_dropped": int(engine.outliers.n_dropped),
        "global_size": int(engine._global_size),
        "n_batches": int(engine.n_batches),
        "n_points": int(engine.n_points),
        "n_sweeps": int(engine._n_sweeps),
        "n_spawned": int(engine.n_spawned),
        "n_spawns_rejected": int(engine.n_spawns_rejected),
        "n_retired": int(engine.n_retired),
        "n_drift_refreshes": int(engine.n_drift_refreshes),
        "adapted": bool(engine.adapted),
        "events": [event.to_dict() for event in engine.events],
        "metadata": dict(metadata or {}),
    }
    with (directory / STATE_NAME).open("w") as handle:
        json.dump(state, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with (directory / ARRAYS_NAME).open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return directory


def _read_state(directory: Path) -> Dict[str, object]:
    state_path = directory / STATE_NAME
    if not state_path.is_file():
        raise FileNotFoundError(
            "%s is not a stream checkpoint (missing %s)" % (directory, STATE_NAME)
        )
    with state_path.open("r") as handle:
        state = json.load(handle)
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            "unrecognised checkpoint format %r (expected %r)"
            % (state.get("format"), CHECKPOINT_FORMAT)
        )
    if int(state.get("schema_version", -1)) > SCHEMA_VERSION:
        raise ValueError(
            "checkpoint schema_version %r is newer than this library supports (%d)"
            % (state.get("schema_version"), SCHEMA_VERSION)
        )
    return state


def checkpoint_metadata(path: PathLike) -> Dict[str, object]:
    """Just the free-form metadata of a checkpoint (one small JSON read).

    The ``replay`` CLI fetches the recorded stream recipe through this
    instead of :func:`describe_checkpoint`, which re-reads the whole
    model artifact and array bundle.
    """
    return dict(_read_state(Path(path)).get("metadata", {}))


def describe_checkpoint(path: PathLike) -> Dict[str, object]:
    """Human-readable checkpoint summary (the ``inspect`` CLI payload)."""
    directory = Path(path)
    state = _read_state(directory)
    artifact = load_artifact(directory / MODEL_DIR)
    with np.load(directory / ARRAYS_NAME) as bundle:
        outliers_buffered = int(bundle["outlier_buffer"].shape[0])
    return {
        "format": CHECKPOINT_FORMAT,
        "schema_version": int(state["schema_version"]),
        "n_batches": int(state["n_batches"]),
        "n_points": int(state["n_points"]),
        "cluster_ids": list(state["cluster_ids"]),
        "n_spawned": int(state["n_spawned"]),
        "n_retired": int(state["n_retired"]),
        "n_drift_refreshes": int(state["n_drift_refreshes"]),
        "adapted": bool(state["adapted"]),
        "outliers_buffered": outliers_buffered,
        "events": list(state["events"]),
        "config": dict(state["config"]),
        "metadata": dict(state.get("metadata", {})),
        "model": artifact.describe(),
    }


def load_checkpoint(path: PathLike, *, config=None):
    """Rebuild a :class:`~repro.stream.engine.StreamingSSPC` from ``path``.

    ``config`` overrides the checkpointed :class:`StreamConfig` (e.g. to
    change adaptation knobs mid-stream); buffers sized by the old config
    are re-bounded under the new one.
    """
    from repro.stream.engine import StreamConfig, StreamEvent, StreamingSSPC

    directory = Path(path)
    state = _read_state(directory)
    artifact = load_artifact(directory / MODEL_DIR)
    engine_config = config if config is not None else StreamConfig.from_dict(state["config"])
    engine = StreamingSSPC(artifact, config=engine_config, center=str(state["center"]))

    with np.load(directory / ARRAYS_NAME) as bundle:
        arrays = {key: bundle[key] for key in bundle.files}

    cluster_ids = [int(cluster_id) for cluster_id in state["cluster_ids"]]
    if len(cluster_ids) != engine.index.n_clusters:
        raise ValueError(
            "checkpoint state names %d clusters but the model holds %d"
            % (len(cluster_ids), engine.index.n_clusters)
        )
    engine.cluster_ids = cluster_ids
    engine._next_cluster_id = int(state["next_cluster_id"])
    engine._windows = [
        arrays["window_%d" % position] for position in range(engine.index.n_clusters)
    ]
    engine._references = [
        (
            (arrays["reference_mean_%d" % position], arrays["reference_variance_%d" % position])
            if "reference_mean_%d" % position in arrays
            else None
        )
        for position in range(engine.index.n_clusters)
    ]
    engine._accepted_since_sweep = [int(count) for count in state["accepted_since_sweep"]]
    engine._starved_sweeps = [int(count) for count in state["starved_sweeps"]]
    engine.outliers.extend(arrays["outlier_buffer"])
    engine.outliers.n_seen = int(state["outliers_seen"])
    engine.outliers.n_dropped = int(state["outliers_dropped"])
    engine._global_size = int(state["global_size"])
    engine._global_mean = arrays["global_mean"]
    engine._global_variance = arrays["global_variance"]
    engine.n_batches = int(state["n_batches"])
    engine.n_points = int(state["n_points"])
    engine._n_sweeps = int(state["n_sweeps"])
    engine.n_spawned = int(state["n_spawned"])
    engine.n_spawns_rejected = int(state.get("n_spawns_rejected", 0))
    engine.n_retired = int(state["n_retired"])
    engine.n_drift_refreshes = int(state["n_drift_refreshes"])
    engine._adapted = bool(state["adapted"])
    engine.events = [StreamEvent.from_dict(event) for event in state["events"]]
    return engine
