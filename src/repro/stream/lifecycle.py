"""Cluster lifecycle building blocks: the outlier buffer and spawning.

Streaming traffic that fails the outlier gate is not noise by
definition — it may be the first sign of a cluster the model has never
seen.  :class:`OutlierBuffer` keeps a *bounded* FIFO of the most recent
rejected rows; :func:`find_spawn_candidate` periodically runs the
paper's own initialisation machinery over that buffer — grids over
candidate dimension subsets, densest-peak search, chi-square dimension
estimation (:mod:`repro.core.grid` / :mod:`repro.core.seed_groups`) —
and proposes a new cluster when a sufficiently dense region exists.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.objective import ObjectiveFunction
from repro.core.seed_groups import SeedGroupBuilder
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import SelectionThreshold
from repro.utils.validation import check_positive_int

__all__ = ["OutlierBuffer", "find_spawn_candidate"]


class OutlierBuffer:
    """Bounded FIFO of the most recently gated-out rows.

    Parameters
    ----------
    capacity:
        Maximum rows retained; the oldest rows are dropped first.
    n_dimensions:
        Row width ``d``.

    Attributes
    ----------
    n_seen:
        Total rows ever pushed.
    n_dropped:
        Rows evicted by the capacity bound (so tests and the bench can
        assert the buffer really is bounded, not silently lossless).
    """

    def __init__(self, capacity: int, n_dimensions: int) -> None:
        self.capacity = check_positive_int(capacity, name="capacity", minimum=1)
        self.n_dimensions = check_positive_int(n_dimensions, name="n_dimensions", minimum=1)
        self._rows = np.empty((0, self.n_dimensions))
        self.n_seen = 0
        self.n_dropped = 0

    def __len__(self) -> int:
        return int(self._rows.shape[0])

    @property
    def rows(self) -> np.ndarray:
        """The buffered rows, oldest first (read-only view semantics)."""
        return self._rows

    def extend(self, rows: np.ndarray) -> None:
        """Append ``rows``, evicting the oldest beyond ``capacity``."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.n_dimensions:
            raise ValueError(
                "rows must have shape (n, %d), got %s" % (self.n_dimensions, (rows.shape,))
            )
        if rows.shape[0] == 0:
            return
        self.n_seen += int(rows.shape[0])
        merged = np.concatenate([self._rows, rows], axis=0)
        if merged.shape[0] > self.capacity:
            self.n_dropped += int(merged.shape[0] - self.capacity)
            merged = merged[-self.capacity:]
        self._rows = merged

    def remove(self, indices: np.ndarray) -> None:
        """Drop the rows at ``indices`` (used after a successful spawn)."""
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return
        mask = np.ones(self._rows.shape[0], dtype=bool)
        mask[indices] = False
        self._rows = self._rows[mask]

    def clear(self) -> None:
        """Drop every buffered row (counters are kept)."""
        self._rows = np.empty((0, self.n_dimensions))

    def __repr__(self) -> str:
        return "OutlierBuffer(%d/%d rows, seen=%d, dropped=%d)" % (
            len(self),
            self.capacity,
            self.n_seen,
            self.n_dropped,
        )


def find_spawn_candidate(
    rows: np.ndarray,
    threshold: SelectionThreshold,
    rng: np.random.Generator,
    *,
    min_points: int,
    grids_per_attempt: int = 8,
    group_attempts: int = 2,
    stats_cache_max_entries: int = 128,
) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Propose a new cluster from the outlier buffer, or ``None``.

    Runs the knowledge-free seed-group construction (Section 4.2.4 of
    the paper) over ``rows``: max-min anchored grids on density-weighted
    candidate dimensions, densest peak wins, relevant dimensions
    estimated with the size-adaptive chi-square criterion.  A candidate
    is returned only when its peak holds at least ``min_points`` rows
    *and* at least one relevant dimension was found — a diffuse buffer
    of genuine background noise produces no candidate.

    Parameters
    ----------
    rows:
        The buffered outlier rows (row indices index into this block).
    threshold:
        A fitted selection threshold describing the *stream-era* global
        population (its global variances weight the grid search).
    rng:
        Generator driving the grid sampling (the caller derives it
        deterministically from the stream position).
    min_points:
        Minimum peak size that justifies a new cluster.
    grids_per_attempt:
        Grids tried per seed-group attempt (the paper's ``g``).
    group_attempts:
        Independent seed-group constructions tried; the densest
        qualifying peak wins.
    stats_cache_max_entries:
        Bound of the temporary statistics workspace.

    Returns
    -------
    ``(seed_indices, dimensions, peak_density)`` or ``None``.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2 or rows.shape[0] < max(int(min_points), 2):
        return None
    workspace = ClusterStatsCache(rows, max_entries=stats_cache_max_entries)
    objective = ObjectiveFunction(rows, threshold, stats_cache=workspace)
    builder = SeedGroupBuilder(
        objective,
        1,
        grids_per_group=grids_per_attempt,
        public_group_factor=max(int(group_attempts), 1),
    )
    _, public_groups = builder.build(rng)
    best = None
    for group in public_groups:
        if group.n_seeds < int(min_points) or group.dimensions.size == 0:
            continue
        if best is None or group.peak_density > best.peak_density:
            best = group
    if best is None:
        return None
    return best.seeds.copy(), best.dimensions.copy(), int(best.peak_density)
