"""``python -m repro.stream`` — console front end of the streaming subsystem."""

from __future__ import annotations

import sys

from repro.stream.cli import main

if __name__ == "__main__":
    sys.exit(main())
