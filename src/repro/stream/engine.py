"""The streaming driver: :class:`StreamingSSPC`.

``StreamingSSPC`` keeps a fitted projected clustering *current* while an
unbounded point stream flows through it, without ever refitting:

1. **Hot path** — every micro-batch is assigned and outlier-gated by the
   serving index and the accepted rows are folded into the cached
   per-cluster statistics via
   :meth:`~repro.serving.index.ProjectedClusterIndex.partial_update`
   (exact mean/variance merges, exact medians).  On a drift-free stream
   this is *bit-identical* to driving a bare index with the same
   batches — the engine adds bookkeeping, never arithmetic.
2. **Drift adaptation** — per cluster, a bounded window of recently
   accepted rows is tested against the cluster's reference statistics
   (:class:`~repro.stream.drift.DriftDetector`); a flagged cluster gets
   the full treatment: the selection thresholds are refreshed on the
   stream-era global variances, ``SelectDim`` is re-run on the window
   through the shared :class:`~repro.core.stats_cache.ClusterStatsCache`
   machinery, and the cluster is re-anchored on the window.  Clusters
   that did not drift are never touched, so the steady-state cost stays
   at batched-inference speed.
3. **Lifecycle** — rejected rows accumulate in a bounded
   :class:`~repro.stream.lifecycle.OutlierBuffer`; periodic sweeps spawn
   a new cluster when the buffer holds a dense region (grid /
   seed-group machinery) and retire clusters starved of traffic.

Clusters carry *stable ids*: batch results are labeled with ids that
survive spawns and retirements, so downstream accuracy accounting works
across lifecycle events.

Dirty-tracking contract: the serving index holds a persistent
:class:`~repro.core.assignment_engine.AssignmentEngine` plan that is
reused across micro-batches rather than rebuilt per batch — steady-state
batches pay only the blocked gain evaluation.  The engine above must
therefore mutate clusters *only* through the index's maintenance API
(``partial_update`` and the lifecycle methods ``add_cluster`` /
``remove_cluster`` / ``reanchor_cluster`` / ``trim_projections`` /
``refresh_threshold``), which patch the affected plan entries; this
module does exactly that, so a drift-free stream stays bit-identical to
driving a bare index.  :meth:`StreamingSSPC.checkpoint` persists the
engine through the existing model-artifact format (see
:mod:`repro.stream.checkpoint`); a restored engine continues the stream
bit-identically to one that never stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.dimension_selection import select_dimensions
from repro.core.model import OUTLIER_LABEL
from repro.core.objective import ObjectiveFunction
from repro.core.stats_cache import ClusterStatsCache, merge_mean_variance
from repro.serving.artifact import ModelArtifact, threshold_from_description
from repro.serving.index import ProjectedClusterIndex
from repro.stream.drift import DriftDetector
from repro.stream.lifecycle import OutlierBuffer, find_spawn_candidate

__all__ = ["BatchResult", "StreamConfig", "StreamEvent", "StreamingSSPC"]


@dataclass
class StreamConfig:
    """Tuning knobs of the streaming engine.

    Attributes
    ----------
    outlier_buffer_size:
        Capacity of the bounded rejected-row FIFO.
    lifecycle_every:
        Batches between spawn/retire sweeps; ``0`` disables lifecycle
        management entirely.
    spawn_min_points:
        Minimum dense-peak size that justifies spawning a cluster.
    spawn_grids:
        Grids tried per spawn attempt (the paper's ``g``, scaled down —
        the buffer is small).
    max_clusters:
        Hard cap on live clusters (``None`` = unbounded).
    retire_patience:
        Consecutive lifecycle sweeps a cluster may go without accepting
        a single point before it is retired.
    drift_check_every:
        Batches between drift assessments; ``0`` disables drift
        adaptation.
    drift_window:
        Per-cluster bound on the recent-rows window.
    drift_min_points:
        Minimum window rows before a cluster can be flagged as drifted.
    drift_zscore:
        Shift-statistic threshold (see :class:`~repro.stream.drift.DriftDetector`).
    refresh_thresholds:
        Whether a drift refresh also refits the selection thresholds on
        the stream-era running global variances.
    projection_window:
        When set, the serving index bounds each cluster's projection
        buffer to this many newest rows as traffic folds in — bounded
        memory at the cost of window (rather than full-history)
        medians, paying a single median pass per fold.  ``None`` keeps
        the serving layer's exact unbounded behaviour.
    stats_cache_max_entries:
        ``max_entries`` of every :class:`ClusterStatsCache` the engine
        creates (drift re-selection, spawning).
    seed:
        Seed of the engine's own randomness (grid sampling during
        spawns); combined with the sweep counter, so behaviour is
        reproducible and checkpoint/restore-stable.
    """

    outlier_buffer_size: int = 1024
    lifecycle_every: int = 8
    spawn_min_points: int = 24
    spawn_grids: int = 8
    max_clusters: Optional[int] = None
    retire_patience: int = 3
    drift_check_every: int = 4
    drift_window: int = 256
    drift_min_points: int = 48
    drift_zscore: float = 8.0
    refresh_thresholds: bool = True
    projection_window: Optional[int] = None
    stats_cache_max_entries: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.outlier_buffer_size < 1:
            raise ValueError("outlier_buffer_size must be at least 1")
        for name in ("lifecycle_every", "drift_check_every"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative (0 disables)" % name)
        if self.spawn_min_points < 2:
            raise ValueError("spawn_min_points must be at least 2")
        if self.retire_patience < 1:
            raise ValueError("retire_patience must be at least 1")
        if self.drift_window < 2:
            raise ValueError("drift_window must be at least 2")
        if self.drift_min_points < 2:
            raise ValueError("drift_min_points must be at least 2")
        if self.drift_min_points > self.drift_window:
            # Windows are trimmed to drift_window rows, so a larger
            # calibration minimum would silently disable detection.
            raise ValueError(
                "drift_min_points (%d) cannot exceed drift_window (%d)"
                % (self.drift_min_points, self.drift_window)
            )
        if self.projection_window is not None and self.projection_window < 1:
            raise ValueError("projection_window must be positive or None")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (checkpoint manifest payload)."""
        return {
            "outlier_buffer_size": int(self.outlier_buffer_size),
            "lifecycle_every": int(self.lifecycle_every),
            "spawn_min_points": int(self.spawn_min_points),
            "spawn_grids": int(self.spawn_grids),
            "max_clusters": None if self.max_clusters is None else int(self.max_clusters),
            "retire_patience": int(self.retire_patience),
            "drift_check_every": int(self.drift_check_every),
            "drift_window": int(self.drift_window),
            "drift_min_points": int(self.drift_min_points),
            "drift_zscore": float(self.drift_zscore),
            "refresh_thresholds": bool(self.refresh_thresholds),
            "projection_window": (
                None if self.projection_window is None else int(self.projection_window)
            ),
            "stats_cache_max_entries": int(self.stats_cache_max_entries),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StreamConfig":
        return cls(**dict(payload))


@dataclass
class StreamEvent:
    """One adaptation the engine performed (spawn / retire / drift)."""

    kind: str
    batch_index: int
    cluster_id: int
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "batch_index": int(self.batch_index),
            "cluster_id": int(self.cluster_id),
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StreamEvent":
        return cls(
            kind=str(payload["kind"]),
            batch_index=int(payload["batch_index"]),
            cluster_id=int(payload["cluster_id"]),
            details=dict(payload.get("details", {})),
        )


@dataclass
class BatchResult:
    """Outcome of one :meth:`StreamingSSPC.process_batch` call.

    ``labels`` uses stable cluster ids (``-1`` marks gated-out rows), as
    of assignment time — adaptations triggered *by* this batch apply to
    the next one.
    """

    batch_index: int
    labels: np.ndarray
    n_assigned: int
    n_outliers: int
    events: List[StreamEvent] = field(default_factory=list)


class StreamingSSPC:
    """Online projected clustering over an unbounded micro-batch stream.

    Parameters
    ----------
    artifact:
        The fitted model to start from (e.g. ``model.to_artifact()`` or
        a loaded checkpoint's model directory).
    config:
        Engine tuning; defaults to :class:`StreamConfig`'s defaults.
    center:
        Scoring center handed to the serving index.
    backend:
        Assignment-kernel backend handed to the serving index (a
        :mod:`repro.core.backends` name; ``None`` defers to
        ``REPRO_ASSIGNMENT_BACKEND`` and then the reference kernel).

    Notes
    -----
    Exact median maintenance — and therefore faithful drift-free
    behaviour — requires an artifact saved *with* member projections
    (the default).
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        *,
        config: Optional[StreamConfig] = None,
        center: str = "median",
        backend=None,
    ) -> None:
        self.config = config if config is not None else StreamConfig()
        self.center = str(center)
        self.index = ProjectedClusterIndex(
            artifact, center=center, projection_window=self.config.projection_window,
            backend=backend,
        )
        self._source_artifact = artifact
        # Points the source artifact had already absorbed before this
        # engine existed; checkpoints record base + the index's own
        # count, so re-checkpointing never double-counts (fold_into's
        # += convention assumes a fresh per-process index).
        self._source_absorbed_base = int(artifact.metadata.get("absorbed_points", 0))
        k = self.index.n_clusters
        d = self.index.n_dimensions
        self.cluster_ids: List[int] = list(range(k))
        self._next_cluster_id = k
        self._windows: List[np.ndarray] = [np.empty((0, d)) for _ in range(k)]
        # Drift references self-calibrate from the first full window of
        # *stream* traffic (None until then): training-member statistics
        # and serving-accepted statistics differ by a small systematic
        # gate bias, which the sqrt(w)-scaled shift tests would amplify
        # into false drift on a perfectly stationary stream.
        self._references: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * k
        self._accepted_since_sweep: List[int] = [0] * k
        self._starved_sweeps: List[int] = [0] * k
        self.outliers = OutlierBuffer(self.config.outlier_buffer_size, d)
        self._global_size = 0
        self._global_mean = np.zeros(d)
        self._global_variance = np.zeros(d)
        self._detector = DriftDetector(
            zscore=self.config.drift_zscore, min_points=self.config.drift_min_points
        )
        self.n_batches = 0
        self.n_points = 0
        self.n_spawned = 0
        self.n_spawns_rejected = 0
        self.n_retired = 0
        self.n_drift_refreshes = 0
        self._n_sweeps = 0
        self._adapted = False
        self.events: List[StreamEvent] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        """Number of live clusters."""
        return self.index.n_clusters

    @property
    def adapted(self) -> bool:
        """Whether any spawn / retire / drift refresh has occurred."""
        return self._adapted

    @property
    def global_statistics(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """Running ``(size, mean, variance)`` of the whole stream."""
        return self._global_size, self._global_mean.copy(), self._global_variance.copy()

    def position_of(self, cluster_id: int) -> int:
        """Index position of a stable cluster id (raises if retired)."""
        return self.cluster_ids.index(int(cluster_id))

    def cluster_statistics(self, cluster_id: int):
        """Serving statistics snapshot of the cluster with this stable id."""
        return self.index.cluster_statistics(self.position_of(cluster_id))

    def cluster_summary(self) -> List[Dict[str, object]]:
        """One dict per live cluster (id, size, dimensionality, window)."""
        summary = []
        for position, cluster_id in enumerate(self.cluster_ids):
            stats = self.index.cluster_statistics(position)
            summary.append(
                {
                    "cluster_id": int(cluster_id),
                    "size": int(stats.size),
                    "n_dimensions": int(stats.dimensions.size),
                    "window_rows": int(self._windows[position].shape[0]),
                    "starved_sweeps": int(self._starved_sweeps[position]),
                }
            )
        return summary

    # ------------------------------------------------------------------ #
    # hot path
    # ------------------------------------------------------------------ #
    def process_batch(self, points: np.ndarray) -> BatchResult:
        """Assign, gate and fold one micro-batch; adapt when triggered.

        Returns the batch's stable-id label vector plus any adaptation
        events the batch triggered.
        """
        with obs.span("stream.batch", category="stream", batch=self.n_batches) as batch_span:
            positions = self.index.partial_update(points)
            points = np.asarray(points, dtype=float)
            batch_index = self.n_batches
            self.n_batches += 1
            self.n_points += int(points.shape[0])

            # Stable-id labels reflect the assignment that was just applied,
            # before any adaptation below can re-number positions.
            ids = np.asarray(self.cluster_ids, dtype=int)
            labels = np.full(points.shape[0], OUTLIER_LABEL, dtype=int)
            assigned_mask = positions != OUTLIER_LABEL
            labels[assigned_mask] = ids[positions[assigned_mask]]

            for position in range(self.index.n_clusters):
                rows = points[positions == position]
                if rows.shape[0] == 0:
                    continue
                self._accepted_since_sweep[position] += int(rows.shape[0])
                window = np.concatenate([self._windows[position], rows], axis=0)
                self._windows[position] = window[-self.config.drift_window:]
            rejected = points[~assigned_mask]
            if rejected.shape[0]:
                self.outliers.extend(rejected)
            self._update_global(points)

            events: List[StreamEvent] = []
            if self.config.drift_check_every and self.n_batches % self.config.drift_check_every == 0:
                events.extend(self._drift_pass(batch_index))
            if self.config.lifecycle_every and self.n_batches % self.config.lifecycle_every == 0:
                events.extend(self._lifecycle_sweep(batch_index))
            self.events.extend(events)

            n_assigned = int(np.count_nonzero(assigned_mask))
            n_outliers = int(points.shape[0] - n_assigned)
            recorder = obs.get_recorder()
            if recorder is not None:
                n_batch = int(points.shape[0])
                recorder.incr("stream.points", float(n_batch))
                recorder.incr("stream.outliers", float(n_outliers))
                recorder.observe("stream.batch_size", float(n_batch))
                recorder.observe(
                    "stream.outlier_rate", n_outliers / n_batch if n_batch else 0.0
                )
                recorder.gauge("stream.clusters", float(self.index.n_clusters))
                # Mirror lifecycle/drift adaptation into the structured
                # event log (kinds: drift, spawn, retire).
                for stream_event in events:
                    detail = dict(stream_event.details or {})
                    detail["batch_index"] = int(stream_event.batch_index)
                    detail["cluster_id"] = int(stream_event.cluster_id)
                    recorder.event(stream_event.kind, **detail)
                batch_span.set(n_assigned=n_assigned, n_outliers=n_outliers,
                               events=len(events))
            return BatchResult(
                batch_index=batch_index,
                labels=labels,
                n_assigned=n_assigned,
                n_outliers=n_outliers,
                events=events,
            )

    def _update_global(self, points: np.ndarray) -> None:
        """Fold a batch into the running stream-wide statistics."""
        batch_mean = points.mean(axis=0)
        if points.shape[0] > 1:
            batch_variance = points.var(axis=0, ddof=1)
        else:
            batch_variance = np.zeros(points.shape[1])
        self._global_size, self._global_mean, self._global_variance = merge_mean_variance(
            self._global_size,
            self._global_mean,
            self._global_variance,
            points.shape[0],
            batch_mean,
            batch_variance,
        )

    # ------------------------------------------------------------------ #
    # drift adaptation
    # ------------------------------------------------------------------ #
    def _drift_pass(self, batch_index: int) -> List[StreamEvent]:
        events: List[StreamEvent] = []
        for position in range(self.index.n_clusters):
            window = self._windows[position]
            if self._references[position] is None:
                # First full window of accepted stream traffic becomes
                # the reference — calibrated on the same acceptance
                # mechanism later windows flow through.
                if window.shape[0] >= self.config.drift_min_points:
                    self._references[position] = (
                        window.mean(axis=0),
                        window.var(axis=0, ddof=1),
                    )
                continue
            stats = self.index.cluster_statistics(position)
            reference_mean, reference_variance = self._references[position]
            verdict = self._detector.assess(
                reference_mean, reference_variance, stats.dimensions, window
            )
            if verdict.drifted:
                events.append(self._refresh_cluster(position, batch_index, verdict))
        return events

    def _refresh_cluster(self, position: int, batch_index: int, verdict) -> StreamEvent:
        """Re-select dimensions and re-anchor one drifted cluster."""
        window = self._windows[position]
        if self.config.refresh_thresholds and self._global_size >= 2:
            self.index.refresh_threshold(self._global_variance)
        # SelectDim over the recent window, through the shared statistics
        # engine (one cached pass serves the selection and the re-anchor).
        workspace = ClusterStatsCache(
            window, max_entries=self.config.stats_cache_max_entries
        )
        objective = ObjectiveFunction(window, self.index.threshold, stats_cache=workspace)
        members = np.arange(window.shape[0])
        dimensions = select_dimensions(objective, members)
        if dimensions.size == 0:
            # The window selects nothing (e.g. mid-transition noise):
            # keep the old subspace rather than making the cluster
            # unservable.
            dimensions = self.index.cluster_statistics(position).dimensions
        self.index.reanchor_cluster(position, dimensions, window)
        stats = workspace.statistics(members)
        self._references[position] = (stats.mean.copy(), stats.variance.copy())
        self.n_drift_refreshes += 1
        self._adapted = True
        return StreamEvent(
            kind="drift",
            batch_index=batch_index,
            cluster_id=int(self.cluster_ids[position]),
            details={
                "score": float(verdict.score),
                "worst_dimension": int(verdict.worst_dimension),
                "window_rows": int(window.shape[0]),
                "n_dimensions": int(dimensions.size),
            },
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _lifecycle_sweep(self, batch_index: int) -> List[StreamEvent]:
        self._n_sweeps += 1
        events: List[StreamEvent] = []
        for position in range(self.index.n_clusters):
            if self._accepted_since_sweep[position] == 0:
                self._starved_sweeps[position] += 1
            else:
                self._starved_sweeps[position] = 0
            self._accepted_since_sweep[position] = 0
        for position in reversed(range(self.index.n_clusters)):
            if (
                self._starved_sweeps[position] >= self.config.retire_patience
                and self.index.n_clusters > 1
            ):
                events.append(self._retire(position, batch_index))
        spawn_event = self._try_spawn(batch_index)
        if spawn_event is not None:
            events.append(spawn_event)
        return events

    def _retire(self, position: int, batch_index: int) -> StreamEvent:
        cluster_id = self.cluster_ids[position]
        size = int(self.index.cluster_statistics(position).size)
        self.index.remove_cluster(position)
        for bookkeeping in (
            self.cluster_ids,
            self._windows,
            self._references,
            self._accepted_since_sweep,
            self._starved_sweeps,
        ):
            del bookkeeping[position]
        self.n_retired += 1
        self._adapted = True
        return StreamEvent(
            kind="retire",
            batch_index=batch_index,
            cluster_id=int(cluster_id),
            details={"size": size, "starved_sweeps": int(self.config.retire_patience)},
        )

    def _try_spawn(self, batch_index: int) -> Optional[StreamEvent]:
        if len(self.outliers) < self.config.spawn_min_points:
            return None
        if (
            self.config.max_clusters is not None
            and self.index.n_clusters >= self.config.max_clusters
        ):
            return None
        rng = np.random.default_rng([int(self.config.seed), 3, self._n_sweeps])
        candidate = find_spawn_candidate(
            self.outliers.rows,
            self._spawn_threshold(),
            rng,
            min_points=self.config.spawn_min_points,
            grids_per_attempt=self.config.spawn_grids,
            stats_cache_max_entries=self.config.stats_cache_max_entries,
        )
        if candidate is None:
            return None
        seeds, dimensions, peak_density = candidate
        rows = self.outliers.rows[seeds]
        # Leakage guard: borderline members of an *existing* cluster are
        # rejected one by one yet pile up into a dense buffer region
        # whose center scores well against that cluster.  A genuinely
        # new cluster's center is unservable everywhere.  Reject (and
        # drop) servable candidates instead of spawning a duplicate.
        center = np.median(rows, axis=0)
        gains = self.index.gains_single(center)
        if gains.size and np.max(gains) > 0.0:
            self.outliers.remove(seeds)
            self.n_spawns_rejected += 1
            return None
        self.index.add_cluster(dimensions, rows)
        cluster_id = self._next_cluster_id
        self._next_cluster_id += 1
        self.cluster_ids.append(cluster_id)
        self._windows.append(rows[-self.config.drift_window:].copy())
        # The spawn rows were *gated-out* traffic; the cluster's drift
        # reference calibrates lazily from the accepted traffic it will
        # now start receiving.
        self._references.append(None)
        self._accepted_since_sweep.append(0)
        self._starved_sweeps.append(0)
        self.outliers.remove(seeds)
        self.n_spawned += 1
        self._adapted = True
        return StreamEvent(
            kind="spawn",
            batch_index=batch_index,
            cluster_id=int(cluster_id),
            details={
                "size": int(rows.shape[0]),
                "n_dimensions": int(dimensions.size),
                "peak_density": int(peak_density),
            },
        )

    def _spawn_threshold(self):
        """A threshold scheme fitted on the stream-era global population."""
        if self._global_size >= 2:
            global_variance = self._global_variance
        else:
            global_variance = self.index.global_variance
        return threshold_from_description(self.index.threshold_description, global_variance)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def checkpoint(self, path, *, metadata: Optional[Dict[str, object]] = None):
        """Persist the engine to ``path`` (see :mod:`repro.stream.checkpoint`)."""
        from repro.stream.checkpoint import save_checkpoint

        return save_checkpoint(self, path, metadata=metadata)

    @classmethod
    def restore(cls, path, *, config: Optional[StreamConfig] = None) -> "StreamingSSPC":
        """Rebuild an engine from a checkpoint directory."""
        from repro.stream.checkpoint import load_checkpoint

        return load_checkpoint(path, config=config)

    def __repr__(self) -> str:
        return "StreamingSSPC(k=%d, batches=%d, points=%d, spawned=%d, retired=%d, drifts=%d)" % (
            self.n_clusters,
            self.n_batches,
            self.n_points,
            self.n_spawned,
            self.n_retired,
            self.n_drift_refreshes,
        )
