"""Regression gate: diff a run's summary against a committed baseline.

The baseline is a small JSON document mapping scenario ids to their
aggregated metrics (``BENCH_smoke.json`` / ``BENCH_reduced.json`` are
committed to the repository).  Gating semantics come from the metric
specs *declared on the registered scenarios* — the baseline file stores
plain numbers only, so tolerances are versioned with the code:

* ``accuracy`` metrics gate with an absolute tolerance, direction-aware;
* ``throughput`` metrics gate with a tolerance relative to the baseline;
* ``timing`` / ``info`` metrics are reported but never gate (absolute
  wall-clock numbers are not comparable across machines).

``compare`` exits non-zero when any gated metric regresses beyond its
declared tolerance, when a requested scenario is missing from the run,
or when a gated metric disappears.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench import registry
from repro.bench.scenario import SCHEMA_VERSION, MetricSpec

BASELINE_SCHEMA_VERSION = 1


@dataclass
class MetricVerdict:
    """Outcome of one metric comparison."""

    scenario_id: str
    metric: str
    kind: str
    status: str  # "ok" | "improved" | "regression" | "missing" | "info"
    baseline: Optional[float] = None
    current: Optional[float] = None
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")


@dataclass
class CompareReport:
    """All verdicts of one compare invocation."""

    verdicts: List[MetricVerdict] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[MetricVerdict]:
        return [verdict for verdict in self.verdicts if verdict.failed]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    def format(self) -> str:
        lines: List[str] = []
        width = max([len(v.scenario_id) for v in self.verdicts] + [8])
        for verdict in self.verdicts:
            baseline = "-" if verdict.baseline is None else "%.6g" % verdict.baseline
            current = "-" if verdict.current is None else "%.6g" % verdict.current
            lines.append(
                "%-10s %-*s %-34s %12s -> %-12s %s"
                % (
                    verdict.status.upper(),
                    width,
                    verdict.scenario_id,
                    verdict.metric,
                    baseline,
                    current,
                    verdict.note,
                )
            )
        for error in self.errors:
            lines.append("ERROR      %s" % error)
        return "\n".join(lines)


def baseline_from_summary(summary: Mapping[str, object]) -> Dict[str, object]:
    """Distil a run summary into the committed-baseline document."""
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "scale": summary.get("scale", "unknown"),
        "scenarios": {
            scenario_id: {"metrics": dict(entry.get("metrics", {}))}
            for scenario_id, entry in dict(summary.get("scenarios", {})).items()
        },
    }


def load_baseline(path) -> Dict[str, object]:
    """Load a baseline file; run summaries are accepted transparently."""
    path = Path(path)
    with open(path) as handle:
        payload = json.load(handle)
    if "scenarios" not in payload:
        raise ValueError("%s is not a repro-bench baseline (no 'scenarios' key)" % path)
    if payload.get("schema_version") not in (BASELINE_SCHEMA_VERSION, SCHEMA_VERSION):
        raise ValueError(
            "%s has baseline schema %r; this build understands %r"
            % (path, payload.get("schema_version"), BASELINE_SCHEMA_VERSION)
        )
    return baseline_from_summary(payload)


def _compare_metric(
    scenario_id: str,
    spec: MetricSpec,
    baseline: Optional[float],
    current: Optional[float],
    *,
    exact: bool,
) -> MetricVerdict:
    if not spec.gated:
        return MetricVerdict(
            scenario_id, spec.name, spec.kind, "info", baseline, current, "not gated"
        )
    if baseline is None:
        return MetricVerdict(
            scenario_id, spec.name, spec.kind, "info", baseline, current, "no baseline value"
        )
    if current is None:
        return MetricVerdict(
            scenario_id, spec.name, spec.kind, "missing", baseline, current, "metric disappeared"
        )
    if math.isnan(current):
        # NaN compares False against everything, which would silently
        # read as "ok" below — a gated metric going NaN is a regression.
        return MetricVerdict(
            scenario_id, spec.name, spec.kind, "regression", baseline, current, "metric is NaN"
        )
    if exact:
        # Exact mode proves deterministic equality (sharded vs serial);
        # wall-clock-derived throughput ratios are exempt by nature.
        if spec.kind != "accuracy":
            return MetricVerdict(
                scenario_id, spec.name, spec.kind, "info", baseline, current, "not exact-gated"
            )
        status = "ok" if current == baseline else "regression"
        note = "" if status == "ok" else "exact mode: values differ"
        return MetricVerdict(scenario_id, spec.name, spec.kind, status, baseline, current, note)
    if spec.kind == "throughput":
        allowed = abs(baseline) * spec.tolerance
    else:
        allowed = spec.tolerance
    delta = current - baseline
    if spec.direction == "higher":
        bad, improved = delta < -allowed, delta > 0
    elif spec.direction == "lower":
        bad, improved = delta > allowed, delta < 0
    else:  # "match"
        bad, improved = abs(delta) > allowed, False
    if bad:
        note = "regressed by %.6g (tolerance %.6g)" % (abs(delta), allowed)
        return MetricVerdict(scenario_id, spec.name, spec.kind, "regression", baseline, current, note)
    status = "improved" if improved else "ok"
    return MetricVerdict(scenario_id, spec.name, spec.kind, status, baseline, current, "")


def compare_run(
    summary: Mapping[str, object],
    baseline: Mapping[str, object],
    *,
    group: Optional[str] = None,
    scenario_ids: Optional[Sequence[str]] = None,
    exact: bool = False,
) -> CompareReport:
    """Compare a run summary against a baseline document.

    ``exact`` demands identical gated-metric values (used in CI to prove
    sharded and serial executions agree bit for bit); ``timing`` /
    ``info`` metrics stay exempt even then.
    """
    report = CompareReport()
    run_scenarios = dict(summary.get("scenarios", {}))
    base_scenarios = dict(baseline.get("scenarios", {}))
    for failure, message in dict(summary.get("failures", {})).items():
        report.errors.append("run failure %s: %s" % (failure, message.splitlines()[-1]))

    selected = registry.select(scenario_ids=scenario_ids, group=group)
    for scenario in selected:
        scenario_id = scenario.scenario_id
        base_entry = base_scenarios.get(scenario_id)
        if base_entry is None:
            continue  # nothing committed for this scenario at this scale
        run_entry = run_scenarios.get(scenario_id)
        if run_entry is None:
            report.errors.append("scenario %s has a baseline but no run result" % scenario_id)
            continue
        base_metrics = dict(base_entry.get("metrics", {}))
        run_metrics = dict(run_entry.get("metrics", {}))
        for spec in scenario.metrics:
            report.verdicts.append(
                _compare_metric(
                    scenario_id,
                    spec,
                    base_metrics.get(spec.name),
                    run_metrics.get(spec.name),
                    exact=exact,
                )
            )
    return report
