"""Chaos benchmark: the durability contract demonstrated under injected faults.

Three arms, each driven by seeded, replayable :class:`FaultPlan`\\ s from
:mod:`repro.reliability.faults`:

* **write-fault recovery** — a streaming engine checkpoints after every
  batch; at a seeded batch a seeded fault (torn write, crash before
  fsync/rename, ENOSPC, blocked rename) is injected into the checkpoint
  save.  The in-memory engine is then discarded — exactly what a real
  ``kill -9`` leaves — and restored from the checkpoint directory.  The
  run must finish with every batch label and the final engine
  fingerprint **bit-identical** to an uninterrupted control run.
* **corruption detection** — a committed two-generation checkpoint is
  copied aside and one seeded mutation (bit flip or truncation) is
  applied to one durable payload of the current generation (state JSON,
  array buffers, model manifest/arrays, or the ``CURRENT`` pointer).
  Restoring must either raise a typed error, roll back to the previous
  generation (fingerprint-verified), or — when the mutation hit a dead
  byte — serve the current generation unchanged.  Anything else is a
  **silent corruption**, the one outcome the reliability layer exists
  to make impossible.
* **executor fault tolerance** — a :class:`ProcessExecutor` maps over
  tasks while a fault plan SIGKILLs one worker and stalls another past
  its deadline on their first attempts; the retried run must still
  return every result in order.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_chaos.py             # smoke sweep
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario chaos

Every fault position, kind and mutation offset is drawn from seeded
generators, so a failing seed replays the identical failure on any
machine.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.bench.scenario import TaskSpec
from repro.core.sspc import SSPC
from repro.data.streams import DriftingStreamGenerator
from repro.reliability import FaultPlan, FaultSpec, InjectedFault, active
from repro.serving.artifact import ARRAYS_NAME as MODEL_ARRAYS_NAME
from repro.serving.artifact import MANIFEST_NAME as MODEL_MANIFEST_NAME
from repro.stream.checkpoint import ARRAYS_NAME, CURRENT_NAME, MODEL_DIR, STATE_NAME
from repro.stream.engine import StreamConfig, StreamingSSPC
from repro.utils.executor import ProcessExecutor
from repro.utils.rng import random_seed_from, spawn_rngs

_STREAM_COMMON = {
    "n_dimensions": 24,
    "n_clusters": 3,
    "cluster_dim": 5,
    "batch_size": 60,
    "n_batches": 6,
    "warmup": 360,
    "fit_iterations": 6,
    "executor_arm": True,
}

#: Per-scale configurations shared with the ``chaos`` scenario registration.
SMOKE_CONFIG = {**_STREAM_COMMON, "n_tasks": 4, "n_write_faults": 3, "n_corruptions": 3, "seed": 29}
REDUCED_CONFIG = {
    **_STREAM_COMMON,
    "batch_size": 80,
    "n_batches": 8,
    "n_tasks": 6,
    "n_write_faults": 4,
    "n_corruptions": 5,
    "seed": 29,
}
PAPER_CONFIG = {
    **_STREAM_COMMON,
    "n_dimensions": 40,
    "batch_size": 100,
    "n_batches": 10,
    "warmup": 800,
    "fit_iterations": 10,
    "n_tasks": 8,
    "n_write_faults": 6,
    "n_corruptions": 8,
    "seed": 29,
}

#: Durable payloads of the current generation the corruption arm mutates.
CORRUPTION_TARGETS = (
    STATE_NAME,
    ARRAYS_NAME,
    MODEL_DIR + "/" + MODEL_MANIFEST_NAME,
    MODEL_DIR + "/" + MODEL_ARRAYS_NAME,
    CURRENT_NAME,
)


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------


def _build_stream(params: Mapping[str, object], seed: int) -> DriftingStreamGenerator:
    return DriftingStreamGenerator(
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        avg_cluster_dimensionality=int(params["cluster_dim"]),
        outlier_fraction=0.05,
        events=(),
        random_state=seed,
    )


def _engine_config(params: Mapping[str, object], seed: int) -> StreamConfig:
    return StreamConfig(
        seed=seed,
        lifecycle_every=4,
        drift_check_every=2,
        spawn_min_points=max(int(params["batch_size"]) // 8, 16),
    )


def engine_fingerprint(engine: StreamingSSPC) -> str:
    """A SHA-256 digest of every bit of observable engine state.

    Two engines with equal fingerprints produce identical labels on any
    future batch: counters, stable cluster ids, every per-cluster
    statistic, the running global statistics and the outlier buffer all
    enter the digest at full precision.
    """
    hasher = hashlib.sha256()

    def _update(array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        hasher.update(str(array.dtype.str).encode("ascii"))
        hasher.update(repr(tuple(array.shape)).encode("ascii"))
        hasher.update(array.tobytes())

    hasher.update(
        repr(
            (
                engine.n_batches,
                engine.n_points,
                engine.n_spawned,
                engine.n_retired,
                engine.n_drift_refreshes,
                list(engine.cluster_ids),
                engine._global_size,
                engine.outliers.n_seen,
                engine.outliers.n_dropped,
            )
        ).encode("ascii")
    )
    _update(engine._global_mean)
    _update(engine._global_variance)
    _update(engine.outliers.rows)
    for position in range(len(engine.cluster_ids)):
        stats = engine.index.cluster_statistics(position)
        hasher.update(repr(int(stats.size)).encode("ascii"))
        _update(stats.dimensions)
        _update(stats.mean)
        _update(stats.variance)
        _update(stats.median_selected)
    return hasher.hexdigest()


def _control_run(
    artifact,
    config: StreamConfig,
    batches: Sequence,
    checkpoint_dir: Path,
) -> Tuple[Dict[int, np.ndarray], Dict[int, str]]:
    """The uninterrupted reference run: labels per batch + fingerprints.

    Checkpoints twice — at the second-to-last and the last batch — so
    ``checkpoint_dir`` ends up holding two committed generations (the
    corruption arm needs a rollback target with a known fingerprint).
    """
    engine = StreamingSSPC(artifact, config=config)
    labels: Dict[int, np.ndarray] = {}
    fingerprints: Dict[int, str] = {}
    for index, batch in enumerate(batches):
        labels[index] = engine.process_batch(batch.data).labels
        if index >= len(batches) - 2:
            engine.checkpoint(checkpoint_dir)
            fingerprints[index] = engine_fingerprint(engine)
    return labels, fingerprints


def _checkpoint_trace(artifact, config: StreamConfig, batches, scratch: Path):
    """The write-path operation trace of one clean checkpoint save."""
    engine = StreamingSSPC(artifact, config=config)
    engine.process_batch(batches[0].data)
    plan = FaultPlan()
    with active(plan):
        engine.checkpoint(scratch / "probe-checkpoint")
    return list(plan.operations)


# ---------------------------------------------------------------------------
# arm 1: write-fault recovery
# ---------------------------------------------------------------------------


def _write_fault_replay(
    artifact,
    config: StreamConfig,
    batches: Sequence,
    fault_seed: int,
    checkpoint_dir: Path,
    trace,
) -> Tuple[Dict[int, np.ndarray], StreamingSSPC, Dict[str, object]]:
    """One faulted run: checkpoint per batch, crash at a seeded save, restore.

    The fault batch is drawn from ``[1, n_batches)`` so the very first
    checkpoint always commits — recovery then has a committed generation
    to land on, which is exactly the guarantee under test (a deployment
    checkpoints once before trusting the directory).
    """
    rng = np.random.default_rng(int(fault_seed))
    fault_batch = int(rng.integers(1, len(batches)))
    plan = FaultPlan.seeded(int(fault_seed), trace, n_faults=1)
    engine = StreamingSSPC(artifact, config=config)
    labels: Dict[int, np.ndarray] = {}
    injected = False
    restores = 0
    index = 0
    while index < len(batches):
        labels[index] = engine.process_batch(batches[index].data).labels
        index += 1
        try:
            if index - 1 == fault_batch and not injected:
                injected = True
                with active(plan):
                    engine.checkpoint(checkpoint_dir)
            else:
                engine.checkpoint(checkpoint_dir)
        except (InjectedFault, OSError):
            # Simulated hard kill: the in-memory engine is gone.  Restore
            # from the last *committed* generation and replay from there.
            engine = StreamingSSPC.restore(checkpoint_dir)
            restores += 1
            index = engine.n_batches
    info = {
        "fault_seed": int(fault_seed),
        "fault_batch": fault_batch,
        "fired": [spec.kind for spec in plan.fired],
        "restores": restores,
    }
    return labels, engine, info


# ---------------------------------------------------------------------------
# arm 2: corruption detection
# ---------------------------------------------------------------------------


def _corrupt_once(
    control_checkpoint: Path,
    seed: int,
    scratch: Path,
    fingerprint_previous: str,
    fingerprint_current: str,
) -> Dict[str, object]:
    """Mutate one durable payload of a checkpoint copy and classify the load.

    Outcomes: ``detected`` (typed raise), ``rolled_back`` (previous
    generation restored, fingerprint-verified), ``served_current`` (the
    mutation hit a dead byte — e.g. zip padding or the pointer's
    trailing newline — and the current generation still verifies), or
    ``silent`` (loaded state matches *neither* known fingerprint: a
    corruption that slipped through, which must never happen).
    """
    rng = np.random.default_rng(int(seed))
    target_dir = scratch / ("corruption-%d" % int(seed))
    shutil.copytree(control_checkpoint, target_dir)
    current = (target_dir / CURRENT_NAME).read_text().strip()
    choice = str(CORRUPTION_TARGETS[int(rng.integers(len(CORRUPTION_TARGETS)))])
    victim = target_dir / choice if choice == CURRENT_NAME else target_dir / current / choice
    data = bytearray(victim.read_bytes())
    offset = int(rng.integers(len(data)))
    if rng.integers(2) and offset > 0:
        mutation = "truncate@%d" % offset
        data = data[:offset]
    else:
        bit = int(rng.integers(8))
        data[offset] ^= 1 << bit
        mutation = "bitflip@%d.%d" % (offset, bit)
    victim.write_bytes(bytes(data))
    result = {"seed": int(seed), "target": choice, "mutation": mutation}
    try:
        engine = StreamingSSPC.restore(target_dir)
    except (ValueError, OSError) as exc:  # IntegrityError is a ValueError
        result.update(outcome="detected", detail=type(exc).__name__)
        return result
    fingerprint = engine_fingerprint(engine)
    if fingerprint == fingerprint_current:
        outcome = "served_current"
    elif fingerprint == fingerprint_previous:
        outcome = "rolled_back"
    else:
        outcome = "silent"
    result.update(outcome=outcome, detail="generation=%s" % getattr(engine, "restored_from", ""))
    return result


# ---------------------------------------------------------------------------
# arm 3: executor fault tolerance
# ---------------------------------------------------------------------------


def _executor_task(item) -> int:
    """Worker body: fire the planned fault for this task (once), then work."""
    index, latch_dir, specs = item
    plan = FaultPlan(specs=[FaultSpec(**spec) for spec in specs])
    plan.apply_task_fault(index, latch_dir)
    return int(index) * int(index)


def _executor_arm(scratch: Path) -> Dict[str, object]:
    """SIGKILL one worker, stall another past its deadline; expect all results."""
    latch_dir = scratch / "latches"
    latch_dir.mkdir(parents=True, exist_ok=True)
    specs = [
        {"op": "task", "index": 1, "kind": "sigkill"},
        {"op": "task", "index": 2, "kind": "stall", "seconds": 30.0},
    ]
    executor = ProcessExecutor(2, task_timeout=1.0, max_retries=2, retry_backoff=0.05)
    items = [(index, str(latch_dir), specs) for index in range(4)]
    expected = [index * index for index in range(4)]
    try:
        results = executor.map(_executor_task, items)
        tolerant = results == expected
        detail = "" if tolerant else "results=%r" % (results,)
    except Exception as exc:
        tolerant = False
        detail = "%s: %s" % (type(exc).__name__, exc)
    return {"tolerant": bool(tolerant), "n_faults": len(specs), "detail": detail}


# ---------------------------------------------------------------------------
# scenario plumbing: plan / execute / aggregate
# ---------------------------------------------------------------------------


def chaos_plan(config: Mapping[str, object]) -> List[TaskSpec]:
    seeds = [random_seed_from(rng) for rng in spawn_rngs(int(config["seed"]), int(config["n_tasks"]))]
    params_base = {key: value for key, value in config.items() if key not in ("seed", "n_tasks")}
    return [
        TaskSpec(name="seed-%02d" % index, params={**params_base, "seed": int(seed)})
        for index, seed in enumerate(seeds)
    ]


def chaos_execute(params: Mapping[str, object]) -> Dict[str, object]:
    seed = int(params["seed"])
    n_write_faults = int(params["n_write_faults"])
    n_corruptions = int(params["n_corruptions"])
    scratch = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        stream = _build_stream(params, seed)
        model = SSPC(
            n_clusters=int(params["n_clusters"]),
            m=0.5,
            max_iterations=int(params["fit_iterations"]),
            random_state=seed,
        ).fit(stream.warmup(int(params["warmup"])).data)
        config = _engine_config(params, seed)
        batches = list(stream.batches(int(params["n_batches"]), int(params["batch_size"])))

        # Checkpointing folds updated statistics back into the engine's
        # *source* artifact in place, so every engine gets its own fresh
        # artifact — sharing one would leak state between replays.
        control_checkpoint = scratch / "control-checkpoint"
        control_labels, fingerprints = _control_run(
            model.to_artifact(), config, batches, control_checkpoint
        )
        fingerprint_previous = fingerprints[len(batches) - 2]
        fingerprint_current = fingerprints[len(batches) - 1]
        trace = _checkpoint_trace(model.to_artifact(), config, batches, scratch)

        fault_seeds = [
            random_seed_from(rng) for rng in spawn_rngs(seed, n_write_faults + n_corruptions)
        ]

        write_faults: List[Dict[str, object]] = []
        for index, fault_seed in enumerate(fault_seeds[:n_write_faults]):
            labels, engine, info = _write_fault_replay(
                model.to_artifact(),
                config,
                batches,
                fault_seed,
                scratch / ("fault-%02d" % index),
                trace,
            )
            recovered = all(
                np.array_equal(labels[position], control_labels[position])
                for position in range(len(batches))
            ) and engine_fingerprint(engine) == fingerprint_current
            write_faults.append({**info, "recovered": bool(recovered)})

        corruptions = [
            _corrupt_once(
                control_checkpoint, fault_seed, scratch, fingerprint_previous, fingerprint_current
            )
            for fault_seed in fault_seeds[n_write_faults:]
        ]

        executor = (
            _executor_arm(scratch)
            if params.get("executor_arm", True)
            else {"tolerant": True, "n_faults": 0, "detail": "disabled"}
        )

        return {
            "seed": seed,
            "trace_length": len(trace),
            "write_faults": write_faults,
            "corruptions": corruptions,
            "executor": executor,
            "n_faults_injected": len(write_faults) + len(corruptions) + int(executor["n_faults"]),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def chaos_aggregate(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    write_runs = [entry for payload in payloads for entry in payload["write_faults"]]
    corruption_runs = [entry for payload in payloads for entry in payload["corruptions"]]
    executor_runs = [payload["executor"] for payload in payloads]

    recovered = sum(1 for entry in write_runs if entry["recovered"])
    outcome_counts: Dict[str, int] = {}
    for entry in corruption_runs:
        outcome = str(entry["outcome"])
        outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
    silent = outcome_counts.get("silent", 0)
    tolerant = sum(1 for entry in executor_runs if entry["tolerant"])
    n_injected = sum(int(payload["n_faults_injected"]) for payload in payloads)

    header = "%-10s %18s %28s %10s" % ("seed", "write recovered", "corruption outcomes", "executor")
    lines = [header, "-" * len(header)]
    for payload in payloads:
        per_seed: Dict[str, int] = {}
        for entry in payload["corruptions"]:
            outcome = str(entry["outcome"])
            per_seed[outcome] = per_seed.get(outcome, 0) + 1
        summary = ",".join("%s:%d" % item for item in sorted(per_seed.items()))
        lines.append(
            "%-10d %15d/%-2d %28s %10s"
            % (
                int(payload["seed"]),
                sum(1 for entry in payload["write_faults"] if entry["recovered"]),
                len(payload["write_faults"]),
                summary,
                "ok" if payload["executor"]["tolerant"] else "FAILED",
            )
        )
    lines.append(
        "%d faults injected: %d/%d recoveries bit-identical, %d silent corruption(s)"
        % (n_injected, recovered, len(write_runs), silent)
    )

    return {
        "metrics": {
            "recovered_bit_identical": recovered / len(write_runs) if write_runs else 1.0,
            "corruption_detection_rate": (
                1.0 - silent / len(corruption_runs) if corruption_runs else 1.0
            ),
            "silent_corruptions": float(silent),
            "executor_fault_tolerant": tolerant / len(executor_runs) if executor_runs else 1.0,
            "n_faults_injected": float(n_injected),
        },
        "table": "\n".join(lines),
        "details": {
            "corruption_outcomes": outcome_counts,
            "write_faults": write_runs,
            "corruptions": corruption_runs,
            "executor": executor_runs,
        },
    }


# ---------------------------------------------------------------------------
# standalone entry point (benchmarks/bench_chaos.py)
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-tasks", type=int, default=None,
                        help="seeded sweep width (default: the suite's)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--reduced", action="store_true",
                        help="run the reduced-scale configuration (default: smoke)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only)")
    args = parser.parse_args(argv)
    config = dict(REDUCED_CONFIG if args.reduced else SMOKE_CONFIG)
    if args.n_tasks is not None:
        config["n_tasks"] = args.n_tasks
    if args.seed is not None:
        config["seed"] = args.seed

    payloads = [chaos_execute(dict(task.params)) for task in chaos_plan(config)]
    outcome = chaos_aggregate(payloads)
    metrics = outcome["metrics"]
    print("SSPC chaos benchmark (%d seeds)" % len(payloads))
    print(outcome["table"])
    print("  recovered bit-identical : %.2f" % metrics["recovered_bit_identical"])
    print("  corruption detection    : %.2f" % metrics["corruption_detection_rate"])
    print("  silent corruptions      : %d" % metrics["silent_corruptions"])
    print("  executor fault tolerant : %.2f" % metrics["executor_fault_tolerant"])
    if args.output:
        with open(args.output, "w") as handle:
            json.dump({"metrics": metrics, "payloads": payloads}, handle, indent=2)
        print("  report written to %s" % args.output)
    ok = (
        metrics["recovered_bit_identical"] == 1.0
        and metrics["silent_corruptions"] == 0
        and metrics["executor_fault_tolerant"] == 1.0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
