"""The sharded scenario runner.

One engine executes every registered scenario: it plans the scale's
tasks, skips the ones whose records already sit in the run store (resume
/ config-hash invalidation), fans the pending tasks out across worker
processes, persists each record the moment it completes, and finally
aggregates per-scenario summaries.

Determinism: every task carries its own integer seed (drawn via
:mod:`repro.utils.rng` at planning time), so a task's record is
bit-identical no matter which worker executes it or in which order —
``--workers 4`` and ``--workers 1`` produce identical metrics.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import re
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import registry
from repro.utils.executor import TaskFault, resolve_executor
from repro.bench.scenario import Scenario, ScenarioSummary, TaskSpec
from repro.bench.store import RunStore


@dataclass
class RunReport:
    """Outcome of one ``run`` invocation."""

    scale: str
    summaries: Dict[str, ScenarioSummary]
    n_tasks: int = 0
    n_cached: int = 0
    n_executed: int = 0
    failures: Dict[str, str] = field(default_factory=dict)
    n_quarantined: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


#: Rows kept in a task's profile table (sorted by cumulative time).
PROFILE_TOP_N = 25

#: BLAS/OpenMP pools these libraries spin up by default would contend
#: with the benchmark's own parallelism (and with sibling shards) and
#: skew kernel timings, so workers pin them to one thread each.  Only
#: ``setdefault`` — an explicit operator override always wins.
_KERNEL_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _pin_kernel_thread_env() -> None:
    """Pin library thread pools to 1 unless the operator already chose."""
    for name in _KERNEL_THREAD_ENV_VARS:
        os.environ.setdefault(name, "1")


def profile_filename(scenario_id: str, task: TaskSpec) -> str:
    """Collision-free profile filename for one (scenario, task) pair.

    Sanitised names alone are ambiguous (scenario ``a__b`` / task ``c``
    collides with ``a`` / ``b__c``), so the task's config hash — which
    already folds in the scenario id — disambiguates.
    """
    clean = lambda part: re.sub(r"[^A-Za-z0-9._-]+", "-", part)  # noqa: E731
    return "%s__%s-%s.txt" % (
        clean(scenario_id),
        clean(task.name),
        task.config_hash(scenario_id)[:8],
    )


def _execute_task(item: Tuple[str, str, Dict[str, object], Optional[str]]) -> Dict[str, object]:
    """Process-worker entry point: resolve the scenario, run one task.

    When the item carries a profile path, the task runs under
    :mod:`cProfile` and the worker writes the top-``PROFILE_TOP_N``
    cumulative-time table there before returning the record (profiling
    inflates the recorded ``seconds``, which is why ``--profile`` is off
    by default).
    """
    scenario_id, task_name, params, profile_path = item
    _pin_kernel_thread_env()
    scenario = registry.get(scenario_id)
    task = TaskSpec(name=task_name, params=params)
    if profile_path is None:
        return scenario.run_task(task)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        record = scenario.run_task(task)
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
        path = Path(profile_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # pid-keyed temp + rename: parallel shards can never tear a file
        temp = path.with_name("%s.%d.tmp" % (path.name, os.getpid()))
        temp.write_text(
            "profile of %s/%s (top %d by cumulative time)\n%s"
            % (scenario_id, task_name, PROFILE_TOP_N, buffer.getvalue())
        )
        os.replace(temp, path)
    return record


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    scale: str,
    store: RunStore,
    workers: int = 1,
    resume: bool = True,
    profile: bool = False,
    task_timeout: Optional[float] = None,
    task_retries: int = 1,
    log: Optional[Callable[[str], None]] = None,
) -> RunReport:
    """Execute ``scenarios`` at ``scale`` into ``store`` with ``workers`` shards.

    Completed tasks found in the store are reused (unless ``resume`` is
    false); failures are collected per task and reported at the end
    rather than aborting the whole run, so a partially failing suite
    still persists every completed record for the next resume.

    Execution is fault tolerant under ``workers > 1``: each task runs in
    its own process, a worker killed by the OS or stuck past
    ``task_timeout`` seconds fails only its own task, and failed
    attempts are retried up to ``task_retries`` times (deterministic
    backoff) before the task is reported as failed — a nightly suite
    survives one flaky shard.  Scenario-raised exceptions are captured
    inside the worker and are never retried (they are deterministic).

    With ``profile`` each executed task runs under :mod:`cProfile` and a
    top-25-cumulative table lands in ``<run_dir>/profiles/`` next to the
    run manifest (cached tasks are not re-executed, hence not profiled;
    combine with ``resume=False`` to profile a full suite).
    """
    emit = log or (lambda message: None)
    _pin_kernel_thread_env()
    planned: List[Tuple[Scenario, TaskSpec]] = []
    by_scenario: Dict[str, List[TaskSpec]] = {}
    for scenario in scenarios:
        tasks = scenario.build_tasks(scale)
        by_scenario[scenario.scenario_id] = tasks
        planned.extend((scenario, task) for task in tasks)

    store.write_manifest(scale=scale, scenarios=by_scenario)

    cached: Dict[Tuple[str, str], Dict[str, object]] = {}
    pending: List[Tuple[Scenario, TaskSpec]] = []
    for scenario, task in planned:
        record = store.load_record(scenario.scenario_id, task) if resume else None
        if record is not None:
            cached[(scenario.scenario_id, task.name)] = record
        else:
            pending.append((scenario, task))
    emit(
        "planned %d tasks across %d scenarios (%d cached, %d to run, %d worker%s)"
        % (
            len(planned),
            len(scenarios),
            len(cached),
            len(pending),
            workers,
            "" if workers == 1 else "s",
        )
    )

    failures: Dict[str, str] = {}
    executor = resolve_executor(
        workers, task_timeout=task_timeout, max_retries=task_retries
    )
    profile_dir = store.root / "profiles" if profile else None
    items = [
        (
            scenario.scenario_id,
            task.name,
            dict(task.params),
            (
                str(profile_dir / profile_filename(scenario.scenario_id, task))
                if profile_dir is not None
                else None
            ),
        )
        for scenario, task in pending
    ]
    for index, outcome in _robust_imap(executor, items, emit):
        scenario, task = pending[index]
        key = "%s/%s" % (scenario.scenario_id, task.name)
        if isinstance(outcome, TaskFault):
            failures[key] = "task %s after %d attempt(s): %s" % (
                outcome.kind,
                outcome.attempts,
                outcome.message,
            )
            emit("FAIL %s: %s" % (key, failures[key].splitlines()[-1]))
            continue
        if isinstance(outcome, _TaskFailure):
            failures[key] = outcome.message
            emit("FAIL %s: %s" % (key, outcome.message.splitlines()[-1]))
            continue
        store.write_record(outcome)
        cached[(scenario.scenario_id, task.name)] = outcome
        emit("done %s (%.2fs)" % (key, outcome["seconds"]))

    if store.quarantined:
        emit(
            "quarantined %d corrupt record(s) under %s (re-run instead of skipped)"
            % (store.n_quarantined, store.root / "quarantine")
        )

    summaries: Dict[str, ScenarioSummary] = {}
    for scenario in scenarios:
        records = [
            cached[(scenario.scenario_id, task.name)]
            for task in by_scenario[scenario.scenario_id]
            if (scenario.scenario_id, task.name) in cached
        ]
        if len(records) != len(by_scenario[scenario.scenario_id]):
            # Task-level failures above already explain the gap; add a
            # scenario-level entry only when they don't (e.g. records
            # missing for another reason), so one failure counts once.
            if not any(key.startswith(scenario.scenario_id + "/") for key in failures):
                failures[scenario.scenario_id] = "incomplete: %d/%d task records" % (
                    len(records),
                    len(by_scenario[scenario.scenario_id]),
                )
            continue
        try:
            summaries[scenario.scenario_id] = scenario.summarize(scale, records)
        except Exception:
            failures[scenario.scenario_id] = "aggregation failed:\n%s" % traceback.format_exc()

    store.write_summary(scale=scale, summaries=summaries, failures=failures)
    return RunReport(
        scale=scale,
        summaries=summaries,
        n_tasks=len(planned),
        n_cached=len(planned) - len(pending),
        n_executed=len(pending) - sum(1 for key in failures if "/" in key),
        failures=failures,
        n_quarantined=store.n_quarantined,
    )


class _TaskFailure:
    def __init__(self, message: str):
        self.message = message


def _guarded_execute(item: Tuple[str, str, Dict[str, object]]):
    try:
        return _execute_task(item)
    except Exception:
        return _TaskFailure(traceback.format_exc())


def _robust_imap(executor, items, emit):
    """Yield ``(index, record-or-failure)`` exactly once per item."""
    done = set()
    try:
        for index, outcome in executor.imap_unordered(_guarded_execute, items):
            done.add(index)
            yield index, outcome
    except Exception:
        # Pool-level breakage (e.g. a worker killed by the OOM killer):
        # fall back to serial execution of the items not yet yielded.
        emit("worker pool failed, falling back to serial execution")
        for index, item in enumerate(items):
            if index not in done:
                yield index, _guarded_execute(item)


def run_suite(
    *,
    scale: str,
    run_dir,
    workers: int = 1,
    group: Optional[str] = None,
    scenario_ids: Optional[Sequence[str]] = None,
    resume: bool = True,
    profile: bool = False,
    task_timeout: Optional[float] = None,
    task_retries: int = 1,
    log: Optional[Callable[[str], None]] = None,
) -> RunReport:
    """Convenience wrapper: select scenarios from the registry and run them."""
    scenarios = registry.select(scenario_ids=scenario_ids, group=group)
    if not scenarios:
        raise ValueError("no scenarios selected")
    return run_scenarios(
        scenarios,
        scale=scale,
        store=RunStore(run_dir),
        workers=workers,
        resume=resume,
        profile=profile,
        task_timeout=task_timeout,
        task_retries=task_retries,
        log=log,
    )
