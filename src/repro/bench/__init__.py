"""Benchmark orchestration: declarative scenarios, one sharded engine.

Every figure reproduction and performance benchmark of the paper is
registered as a :class:`~repro.bench.scenario.Scenario` and executed by
one engine — a multiprocessing-sharded, resumable runner with a
schema-versioned result store and a baseline regression gate.  See
``repro-bench --help`` (or ``python -m repro.bench``).

This package root stays import-light; scenario definitions load lazily
on first registry lookup.  The executor protocol the runner shards with
lives in :mod:`repro.utils.executor` (it is also what the experiment
harness fans ``run_best_of`` repeats out with) and is re-exported here
for convenience.
"""

from repro.bench.config import DEFAULT_SCALE, SCALES, resolve_scale, task_budget_seconds
from repro.bench.scenario import MetricSpec, Scenario, ScenarioSummary, TaskSpec
from repro.utils.executor import (
    ExecutorTaskError,
    ProcessExecutor,
    SerialExecutor,
    TaskFault,
    ThreadExecutor,
    resolve_executor,
)

__all__ = [
    "DEFAULT_SCALE",
    "SCALES",
    "ExecutorTaskError",
    "MetricSpec",
    "ProcessExecutor",
    "Scenario",
    "ScenarioSummary",
    "SerialExecutor",
    "TaskFault",
    "TaskSpec",
    "ThreadExecutor",
    "resolve_executor",
    "resolve_scale",
    "task_budget_seconds",
]
