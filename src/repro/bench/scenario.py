"""Declarative scenario model for the benchmark orchestrator.

A *scenario* is one figure reproduction or performance benchmark of the
paper, declared as data instead of a procedural script: an identifier,
the figure it reproduces, per-scale configurations, a *plan* that fans
the configuration out into independently seeded tasks, an *execute*
callable that runs one task, and an *aggregate* callable that folds the
task records back into figure-level metrics, a printable table and the
details the pytest wrappers assert on.

Tasks are the unit of sharding and of resumability: every task owns a
JSON-safe parameter dictionary (including its own integer seed drawn via
:mod:`repro.utils.rng`), so executing it is deterministic regardless of
which worker runs it, and its record is keyed by a content hash of those
parameters — change the configuration and the stale record is invalidated
automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version of the record/manifest schema.  Bump on incompatible changes;
#: the hash incorporates it, so old records are invalidated automatically.
SCHEMA_VERSION = 1


def canonical_json(value) -> str:
    """Deterministic JSON used for hashing and for stored records."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TaskSpec:
    """One independently executable, independently seeded unit of work."""

    name: str
    params: Mapping[str, object]

    def config_hash(self, scenario_id: str) -> str:
        payload = canonical_json(
            {
                "schema": SCHEMA_VERSION,
                "scenario": scenario_id,
                "task": self.name,
                "params": dict(self.params),
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class MetricSpec:
    """Declared comparison semantics of one aggregated metric.

    Attributes
    ----------
    name:
        Key into the scenario's aggregated metrics dictionary.
    kind:
        ``"accuracy"`` — deterministic quality numbers, gated with an
        *absolute* tolerance; ``"throughput"`` — hardware-relative speed
        ratios, gated with a *relative* tolerance; ``"timing"`` /
        ``"info"`` — recorded and reported but never gated (absolute
        wall-clock numbers are not comparable across machines).
    direction:
        ``"higher"`` (regression = drop), ``"lower"`` (regression =
        growth) or ``"match"`` (regression = any drift beyond tolerance).
    tolerance:
        Allowed regression before ``repro-bench compare`` fails:
        absolute for ``accuracy``, a fraction of the baseline value for
        ``throughput``.
    """

    name: str
    kind: str = "accuracy"
    direction: str = "higher"
    tolerance: float = 0.0

    def __post_init__(self):
        if self.kind not in ("accuracy", "throughput", "timing", "info"):
            raise ValueError("unknown metric kind %r" % self.kind)
        if self.direction not in ("higher", "lower", "match"):
            raise ValueError("unknown metric direction %r" % self.direction)

    @property
    def gated(self) -> bool:
        return self.kind in ("accuracy", "throughput")


@dataclass
class ScenarioSummary:
    """Aggregated outcome of one scenario at one scale."""

    scenario_id: str
    scale: str
    metrics: Dict[str, float]
    table: str = ""
    details: Dict[str, object] = field(default_factory=dict)
    n_tasks: int = 0
    seconds: float = 0.0
    over_budget_tasks: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "scale": self.scale,
            "metrics": dict(self.metrics),
            "table": self.table,
            "details": self.details,
            "n_tasks": int(self.n_tasks),
            "seconds": float(self.seconds),
            "over_budget_tasks": list(self.over_budget_tasks),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSummary":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            scale=str(payload["scale"]),
            metrics=dict(payload.get("metrics", {})),
            table=str(payload.get("table", "")),
            details=dict(payload.get("details", {})),
            n_tasks=int(payload.get("n_tasks", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            over_budget_tasks=list(payload.get("over_budget_tasks", [])),
        )


@dataclass(frozen=True)
class Scenario:
    """One declaratively registered figure reproduction / benchmark.

    Attributes
    ----------
    scenario_id:
        Stable identifier (``figure3_raw_accuracy`` ...).
    figure:
        The paper figure / section the scenario reproduces.
    title:
        One-line human description.
    group:
        Shard group used by the CI matrix (``knowledge`` / ``accuracy``
        / ``robustness`` / ``perf``).
    scale_configs:
        Mapping from scale name to the JSON-safe configuration handed to
        :attr:`plan`.
    plan:
        ``(config) -> [TaskSpec]`` — fans one configuration out into
        independently seeded tasks.
    execute:
        ``(params) -> payload dict`` — runs one task; must be a
        module-level callable so process workers can unpickle it.
    aggregate:
        ``(payloads) -> {"metrics", "table", "details"}`` — folds the
        ordered task payloads into the scenario summary.
    metrics:
        Declared :class:`MetricSpec` comparison semantics.
    """

    scenario_id: str
    figure: str
    title: str
    group: str
    scale_configs: Mapping[str, Mapping[str, object]]
    plan: Callable[[Mapping[str, object]], List[TaskSpec]]
    execute: Callable[[Mapping[str, object]], Dict[str, object]]
    aggregate: Callable[[Sequence[Mapping[str, object]]], Dict[str, object]]
    metrics: Tuple[MetricSpec, ...] = ()

    def config_for(self, scale: str) -> Mapping[str, object]:
        try:
            return self.scale_configs[scale]
        except KeyError:
            raise KeyError(
                "scenario %r declares no %r scale (has: %s)"
                % (self.scenario_id, scale, ", ".join(sorted(self.scale_configs)))
            ) from None

    def build_tasks(self, scale: str) -> List[TaskSpec]:
        tasks = list(self.plan(self.config_for(scale)))
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("scenario %r built duplicate task names" % self.scenario_id)
        return tasks

    def metric_spec(self, name: str) -> Optional[MetricSpec]:
        for spec in self.metrics:
            if spec.name == name:
                return spec
        return None

    def run_task(self, task: TaskSpec) -> Dict[str, object]:
        """Execute one task and wrap its payload in a persistable record."""
        import time

        started = time.perf_counter()
        payload = self.execute(dict(task.params))
        seconds = time.perf_counter() - started
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario_id": self.scenario_id,
            "task": task.name,
            "config_hash": task.config_hash(self.scenario_id),
            "params": dict(task.params),
            "seconds": float(seconds),
            "payload": payload,
        }

    def summarize(self, scale: str, records: Sequence[Mapping[str, object]]) -> ScenarioSummary:
        """Aggregate completed task records (sorted by task name) at ``scale``."""
        from repro.bench.config import task_budget_seconds

        ordered = sorted(records, key=lambda record: str(record["task"]))
        outcome = self.aggregate([record["payload"] for record in ordered])
        budget = task_budget_seconds(scale)
        return ScenarioSummary(
            scenario_id=self.scenario_id,
            scale=scale,
            metrics={key: float(value) for key, value in outcome.get("metrics", {}).items()},
            table=str(outcome.get("table", "")),
            details=dict(outcome.get("details", {})),
            n_tasks=len(ordered),
            seconds=float(sum(record["seconds"] for record in ordered)),
            over_budget_tasks=[
                str(record["task"]) for record in ordered if record["seconds"] > budget
            ],
        )

    def run(self, scale: str) -> ScenarioSummary:
        """Execute every task serially in-process and aggregate.

        This is the path the pytest-benchmark wrappers use; it goes
        through exactly the same plan / execute / aggregate pipeline as
        the sharded runner, so the two cannot drift.
        """
        records = [self.run_task(task) for task in self.build_tasks(scale)]
        return self.summarize(scale, records)
