"""Observability overhead gate: instrumentation must be provably cheap.

The workload is one deterministic tour through every instrumented
subsystem — an SSPC fit, a block of streaming batches, a serve
predict/partial-update pass, a (serial) executor job and a
fake-clock pass through the serving telemetry hot path — fingerprinted
by hashing every label array (and telemetry export) it produces.
Three claims are gated:

* **disabled overhead < 2%** — with no recorder installed every hook is
  one module-global load plus an ``is None`` test.  Timing that
  directly is hopeless (it vanishes into scheduler noise), so the gate
  is an *upper bound*: the enabled run counts every hook crossing
  (``recorder.n_hook_calls``), a tight loop measures the worst-case
  per-call cost of a disabled hook, and their product over the
  disabled workload's wall clock bounds the relative overhead.  The
  always-on serving telemetry is priced the same way: a probe loop
  measures the per-request begin/finish cost and the bound charges
  one record per telemetry-leg request.
* **bit identity** — the fingerprint with a recorder installed equals
  the fingerprint without one: observability never perturbs results.
* **subsystem coverage** — the enabled run's trace spans at least four
  distinct categories (fit, engine, stream, serve, executor), so the
  instrumentation cannot silently rot away.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke

The committed baselines live in ``BENCH_smoke.json`` /
``BENCH_reduced.json`` through the ``repro-bench`` gate.
"""

from __future__ import annotations

import argparse
import hashlib
import itertools
import json
import sys
import time

import numpy as np

from repro import obs
from repro.core.sspc import SSPC
from repro.data.generator import SyntheticDataGenerator
from repro.obs.prom import PromWriter, write_telemetry
from repro.obs.slo import SLOConfig
from repro.obs.telemetry import Telemetry
from repro.serving.index import ProjectedClusterIndex
from repro.stream import StreamConfig, StreamingSSPC
from repro.utils.executor import SerialExecutor

#: Gate: estimated disabled-path overhead must stay under this.
MAX_DISABLED_OVERHEAD_PCT = 2.0

#: Gate: the enabled run must span at least this many subsystems.
MIN_SUBSYSTEM_CATEGORIES = 4

#: Calls used to measure the per-call cost of a disabled hook.
PROBE_CALLS = 200_000

#: Calls used to measure the per-request cost of serving telemetry.
TELEMETRY_PROBE_CALLS = 20_000


def _executor_leg(item: int) -> int:
    return item * item


def run_workload(args: argparse.Namespace) -> str:
    """One deterministic pass through fit / stream / serve / executor.

    Returns a fingerprint hash of every produced label array; identical
    inputs must yield an identical fingerprint whether or not a
    recorder is installed.
    """
    dataset = SyntheticDataGenerator(
        n_objects=args.n_objects,
        n_dimensions=args.n_dimensions,
        n_clusters=args.n_clusters,
        avg_cluster_dimensionality=max(args.n_dimensions // 10, 3),
        outlier_fraction=0.05,
        random_state=args.seed,
    ).generate(args.seed)
    digest = hashlib.sha256()

    model = SSPC(
        n_clusters=args.n_clusters,
        m=0.5,
        max_iterations=args.fit_iterations,
        random_state=args.seed,
    ).fit(dataset.data)
    digest.update(np.ascontiguousarray(model.labels_).tobytes())
    digest.update(np.float64(model.objective_).tobytes())

    engine = StreamingSSPC(
        model.to_artifact(),
        config=StreamConfig(seed=args.seed, drift_check_every=2, lifecycle_every=4),
    )
    rng = np.random.default_rng(args.seed + 1)
    for _ in range(args.stream_batches):
        result = engine.process_batch(
            rng.normal(size=(args.batch_size, args.n_dimensions))
        )
        digest.update(np.ascontiguousarray(result.labels).tobytes())

    index = ProjectedClusterIndex(model.to_artifact())
    queries = rng.normal(size=(args.batch_size, args.n_dimensions))
    labels = index.predict(queries)
    index.partial_update(queries, labels)
    digest.update(np.ascontiguousarray(labels).tobytes())

    squares = SerialExecutor().map(_executor_leg, list(range(16)))
    digest.update(np.asarray(squares, dtype=np.int64).tobytes())

    digest.update(run_telemetry_workload(args).encode("ascii"))
    return digest.hexdigest()


def run_telemetry_workload(args: argparse.Namespace) -> str:
    """One deterministic tour through the serving-telemetry hot path.

    A counter clock makes every duration, SLO window and burn rate
    reproducible, so the aggregate snapshot and the Prometheus
    rendering fold into the workload fingerprint: the always-on
    telemetry must neither perturb nor be perturbed by a recorder
    being installed.
    """
    ticks = itertools.count()
    telemetry = Telemetry(
        SLOConfig(latency_budget_ms=0.5),
        clock=lambda: next(ticks) * 1e-4,
        trace_prefix="bench",
    )
    statuses = (200, 200, 200, 200, 404, 200, 500, 200)
    for i in range(args.telemetry_requests):
        route = "predict" if i % 3 else "predict_soft"
        trace = telemetry.begin_request("POST", route, telemetry.next_request_id())
        if i % 5 == 0:
            batch_id = i // 5 + 1
            trace.link_batch(
                {
                    "batch_id": batch_id,
                    "batch_size": 4,
                    "flush_reason": "full",
                    "queue_wait_us": 150.0,
                    "kernel_s": 2e-4,
                },
                trace.start,
            )
            telemetry.observe_flush(batch_id, "full", 4, i * 1e-4, 2e-4)
        telemetry.finish_request(trace, statuses[i % len(statuses)])

    writer = PromWriter()
    write_telemetry(writer, telemetry)
    digest = hashlib.sha256()
    digest.update(json.dumps(telemetry.snapshot(), sort_keys=True).encode("utf-8"))
    digest.update(writer.render().encode("utf-8"))
    # The assembled tail trace carries process ids, so only its shape
    # (event count) joins the fingerprint.
    n_events = len(telemetry.tail_trace()["traceEvents"])
    digest.update(b"tail:%d" % n_events)
    return digest.hexdigest()


def measure_disabled_hook_seconds() -> float:
    """Worst-case per-call cost of a hook with no recorder installed."""
    with obs.suspended():
        per_call = []
        for hook in (lambda: obs.incr("probe"), lambda: obs.span("probe")):
            start = time.perf_counter()
            for _ in range(PROBE_CALLS):
                hook()
            per_call.append((time.perf_counter() - start) / PROBE_CALLS)
    return max(per_call)


def measure_telemetry_record_seconds() -> float:
    """Per-request cost of the always-on telemetry aggregation path."""
    telemetry = Telemetry(trace_prefix="probe")
    start = time.perf_counter()
    for _ in range(TELEMETRY_PROBE_CALLS):
        trace = telemetry.begin_request("POST", "predict", "probe")
        telemetry.finish_request(trace, 200)
    return (time.perf_counter() - start) / TELEMETRY_PROBE_CALLS


def run_benchmark(args: argparse.Namespace) -> dict:
    # ---- disabled arm: plain wall clock, shielded from outer recorders
    disabled_times = []
    fingerprint_disabled = ""
    with obs.suspended():
        for _ in range(args.repeats):
            start = time.perf_counter()
            fingerprint_disabled = run_workload(args)
            disabled_times.append(time.perf_counter() - start)
    disabled_seconds = min(disabled_times)

    # ---- enabled arm: a fresh recorder captures the whole workload
    with obs.recording() as recorder:
        start = time.perf_counter()
        fingerprint_enabled = run_workload(args)
        enabled_seconds = time.perf_counter() - start
        n_hook_calls = recorder.n_hook_calls
        n_spans = len(recorder.spans)
        categories = {span["cat"] for span in recorder.spans}

    per_hook_seconds = measure_disabled_hook_seconds()
    per_telemetry_seconds = measure_telemetry_record_seconds()
    # Upper bound: every hook the enabled run crossed plus every
    # always-on telemetry record, each priced at its measured per-call
    # cost, relative to the real workload.
    hook_seconds = n_hook_calls * per_hook_seconds
    telemetry_seconds = args.telemetry_requests * per_telemetry_seconds
    overhead_disabled_pct = 100.0 * (hook_seconds + telemetry_seconds) / disabled_seconds
    telemetry_overhead_pct = 100.0 * telemetry_seconds / disabled_seconds
    overhead_enabled_pct = 100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds

    return {
        "config": {
            "n_objects": args.n_objects,
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "fit_iterations": args.fit_iterations,
            "stream_batches": args.stream_batches,
            "batch_size": args.batch_size,
            "telemetry_requests": args.telemetry_requests,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "n_hook_calls": n_hook_calls,
        "per_hook_disabled_ns": per_hook_seconds * 1e9,
        "n_telemetry_requests": args.telemetry_requests,
        "per_telemetry_record_ns": per_telemetry_seconds * 1e9,
        "telemetry_overhead_pct": telemetry_overhead_pct,
        "overhead_disabled_pct": overhead_disabled_pct,
        "overhead_enabled_pct": overhead_enabled_pct,
        "overhead_disabled_ok": overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT,
        "enabled_bit_identical": fingerprint_disabled == fingerprint_enabled,
        "categories": sorted(categories),
        "subsystem_coverage_ok": len(categories) >= MIN_SUBSYSTEM_CATEGORIES,
        "n_spans": n_spans,
        "fingerprint": fingerprint_disabled,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-objects", type=int, default=2000)
    parser.add_argument("--n-dimensions", type=int, default=60)
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--fit-iterations", type=int, default=8)
    parser.add_argument("--stream-batches", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=200)
    parser.add_argument("--telemetry-requests", type=int, default=400,
                        help="requests driven through the serving telemetry leg")
    parser.add_argument("--repeats", type=int, default=3,
                        help="disabled-arm runs; the best is the denominator")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_objects = min(args.n_objects, 500)
        args.n_dimensions = min(args.n_dimensions, 24)
        args.n_clusters = min(args.n_clusters, 4)
        args.fit_iterations = min(args.fit_iterations, 4)
        args.stream_batches = min(args.stream_batches, 4)
        args.batch_size = min(args.batch_size, 100)
        args.telemetry_requests = min(args.telemetry_requests, 200)

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("observability overhead gate (n=%d, d=%d, k=%d)" % (
        args.n_objects, args.n_dimensions, args.n_clusters))
    print("  workload (disabled)  : %.3f s (best of %d)" % (
        report["disabled_seconds"], args.repeats))
    print("  workload (enabled)   : %.3f s (%+.1f%% — noisy, info only)" % (
        report["enabled_seconds"], report["overhead_enabled_pct"]))
    print("  hook crossings       : %d at %.1f ns each (disabled)" % (
        report["n_hook_calls"], report["per_hook_disabled_ns"]))
    print("  telemetry records    : %d at %.0f ns each (%.4f%% of workload)" % (
        report["n_telemetry_requests"], report["per_telemetry_record_ns"],
        report["telemetry_overhead_pct"]))
    print("  disabled overhead    : %.4f%% (bound incl. telemetry; gate < %.1f%%)" % (
        report["overhead_disabled_pct"], MAX_DISABLED_OVERHEAD_PCT))
    print("  bit identical        : %s" % report["enabled_bit_identical"])
    print("  subsystems spanned   : %s" % ", ".join(report["categories"]))
    if args.output:
        print("  report written to %s" % args.output)

    failed = []
    if not report["overhead_disabled_ok"]:
        failed.append("disabled overhead %.3f%% breaches the %.1f%% gate"
                      % (report["overhead_disabled_pct"], MAX_DISABLED_OVERHEAD_PCT))
    if not report["enabled_bit_identical"]:
        failed.append("results diverge when a recorder is installed")
    if not report["subsystem_coverage_ok"]:
        failed.append("trace covers %d subsystem(s), need %d"
                      % (len(report["categories"]), MIN_SUBSYSTEM_CATEGORIES))
    for message in failed:
        print("ERROR: %s" % message, file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
