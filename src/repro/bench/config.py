"""Central scale and budget resolution for every benchmark entry point.

Two different consumers previously interpreted the ``REPRO_BENCH_SCALE``
environment variable on their own: the pytest-benchmark harness in
``benchmarks/conftest.py`` and the ad-hoc benchmark scripts.  This module
is now the single source of truth — both the pytest path and the
``repro-bench`` orchestrator resolve the scale (and the per-task time
budgets attached to it) here, so the two paths cannot drift.

Scales
------
``smoke``
    Seconds-per-scenario configurations for CI gating on every push.
``reduced``
    The default developer scale: preserves the paper's ratios (cluster
    dimensionality as a fraction of ``d``, coverage, input sizes) while
    finishing the full suite in minutes.  This is the nightly CI scale.
``paper``
    The full configurations from the paper (tens of minutes).
"""

from __future__ import annotations

import os
from typing import Optional

SCALES = ("smoke", "reduced", "paper")

DEFAULT_SCALE = "reduced"

SCALE_ENV_VAR = "REPRO_BENCH_SCALE"

#: Soft per-task wall-clock budgets in seconds.  The runner records task
#: durations and the report flags tasks that exceed their scale's budget;
#: budgets are advisory (they never fail a run) because shared CI runners
#: are noisy.
TASK_BUDGET_SECONDS = {
    "smoke": 60.0,
    "reduced": 600.0,
    "paper": 3600.0,
}


def resolve_scale(explicit: Optional[str] = None) -> str:
    """Resolve the active benchmark scale.

    Parameters
    ----------
    explicit:
        A scale requested explicitly (e.g. via ``repro-bench run
        --suite``); wins over the environment.  ``None`` falls back to
        the ``REPRO_BENCH_SCALE`` environment variable, and finally to
        ``reduced``.

    Raises
    ------
    ValueError
        If the requested scale is not one of :data:`SCALES`.
    """
    scale = explicit if explicit is not None else os.environ.get(SCALE_ENV_VAR, DEFAULT_SCALE)
    scale = str(scale).strip().lower() or DEFAULT_SCALE
    if scale not in SCALES:
        raise ValueError(
            "unknown benchmark scale %r: expected one of %s" % (scale, ", ".join(SCALES))
        )
    return scale


def task_budget_seconds(scale: str) -> float:
    """Advisory per-task wall-clock budget for ``scale``."""
    return TASK_BUDGET_SECONDS[resolve_scale(scale)]
