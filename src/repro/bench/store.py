"""Schema-versioned, resumable on-disk result store for benchmark runs.

Layout of a run directory::

    <run_dir>/
        manifest.json                      # run identity + planned tasks
        summary.json                       # aggregated metrics (run end)
        <scenario_id>/<task>-<hash>.json   # one record per completed task

Records are keyed by the task's *config hash* (scenario id + task name +
parameters + schema version), so a record is only ever reused for the
exact configuration that produced it: interrupted runs resume without
re-executing completed tasks, and any configuration or schema change
invalidates stale records automatically.  All writes are atomic
(temp file + rename) so a killed run never leaves a corrupt record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.bench.scenario import SCHEMA_VERSION, ScenarioSummary, TaskSpec

MANIFEST_NAME = "manifest.json"
SUMMARY_NAME = "summary.json"


class StoreError(RuntimeError):
    """Raised when a run directory cannot be (re)used."""


def _atomic_write_json(path: Path, payload: Mapping[str, object]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, object]]:
    if not path.is_file():
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        # A record truncated by a hard kill is treated as absent: the
        # task simply re-executes.
        return None


class RunStore:
    """One run directory: manifest, per-task records and the summary."""

    def __init__(self, root):
        self.root = Path(root)

    # ---- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def load_manifest(self) -> Optional[Dict[str, object]]:
        return _read_json(self.manifest_path)

    def write_manifest(
        self,
        *,
        scale: str,
        scenarios: Mapping[str, List[TaskSpec]],
        run_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Write (or refresh) the manifest describing the planned tasks."""
        existing = self.load_manifest() or {}
        if existing and existing.get("scale") != scale:
            raise StoreError(
                "run directory %s holds a %r-scale run; refusing to mix in %r-scale tasks "
                "(use a fresh --run-dir)" % (self.root, existing.get("scale"), scale)
            )
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "run_id": run_id or existing.get("run_id") or ("run-%d" % int(time.time())),
            "scale": scale,
            "created_at": existing.get("created_at") or time.strftime("%Y-%m-%dT%H:%M:%S"),
            "updated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenarios": dict(existing.get("scenarios", {})),
        }
        for scenario_id, tasks in scenarios.items():
            manifest["scenarios"][scenario_id] = {
                "tasks": {task.name: task.config_hash(scenario_id) for task in tasks},
            }
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.manifest_path, manifest)
        return manifest

    # ---- task records --------------------------------------------------

    def record_path(self, scenario_id: str, task: TaskSpec) -> Path:
        return self.root / scenario_id / ("%s-%s.json" % (task.name, task.config_hash(scenario_id)))

    def load_record(self, scenario_id: str, task: TaskSpec) -> Optional[Dict[str, object]]:
        """The stored record for ``task``, or ``None`` if absent/stale."""
        record = _read_json(self.record_path(scenario_id, task))
        if record is None:
            return None
        if record.get("schema_version") != SCHEMA_VERSION:
            return None
        if record.get("config_hash") != task.config_hash(scenario_id):
            return None
        return record

    def write_record(self, record: Mapping[str, object]) -> Path:
        path = self.root / str(record["scenario_id"])
        path.mkdir(parents=True, exist_ok=True)
        target = path / ("%s-%s.json" % (record["task"], record["config_hash"]))
        _atomic_write_json(target, record)
        return target

    # ---- summary -------------------------------------------------------

    @property
    def summary_path(self) -> Path:
        return self.root / SUMMARY_NAME

    def load_summary(self) -> Optional[Dict[str, object]]:
        return _read_json(self.summary_path)

    def write_summary(
        self,
        *,
        scale: str,
        summaries: Mapping[str, ScenarioSummary],
        failures: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        manifest = self.load_manifest() or {}
        existing = self.load_summary() or {}
        merged: Dict[str, object] = dict(existing.get("scenarios", {}))
        for scenario_id, summary in summaries.items():
            merged[scenario_id] = summary.to_dict()
        # Failures merge the other way round: keep what earlier runs into
        # this store reported, clear only entries belonging to scenarios
        # that were successfully (re-)summarized now, then layer the new
        # failures on top.  A later selective run therefore cannot wash
        # out another scenario's failure while its stale summary remains.
        merged_failures: Dict[str, str] = {
            key: message
            for key, message in dict(existing.get("failures", {})).items()
            if key.split("/")[0] not in summaries
        }
        merged_failures.update(dict(failures or {}))
        payload = {
            "schema_version": SCHEMA_VERSION,
            "run_id": manifest.get("run_id", "unknown"),
            "scale": scale,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenarios": merged,
            "failures": merged_failures,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.summary_path, payload)
        return payload
