"""Schema-versioned, resumable on-disk result store for benchmark runs.

Layout of a run directory::

    <run_dir>/
        manifest.json                      # run identity + planned tasks
        summary.json                       # aggregated metrics (run end)
        <scenario_id>/<task>-<hash>.json   # one record per completed task
        quarantine/                        # corrupt payloads, moved aside

Records are keyed by the task's *config hash* (scenario id + task name +
parameters + schema version), so a record is only ever reused for the
exact configuration that produced it: interrupted runs resume without
re-executing completed tasks, and any configuration or schema change
invalidates stale records automatically.  All writes go through
:mod:`repro.reliability.atomic` (temp + fsync + rename, self-checksum
stamped), so a killed run never leaves a half-written record — and a
record that *is* damaged (bit rot, torn write from an older tool) is
quarantined, counted and re-run rather than silently skipped: the run
summary reports every quarantined payload.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro import obs
from repro.bench.scenario import SCHEMA_VERSION, ScenarioSummary, TaskSpec
from repro.reliability import IntegrityError, atomic_write_json, read_json

MANIFEST_NAME = "manifest.json"
SUMMARY_NAME = "summary.json"
QUARANTINE_DIR = "quarantine"


class StoreError(RuntimeError):
    """Raised when a run directory cannot be (re)used."""


class RunStore:
    """One run directory: manifest, per-task records and the summary.

    ``store.quarantined`` lists every corrupt payload this instance
    moved aside (record label, original path, quarantine path, reason);
    the runner surfaces it and :meth:`write_summary` persists it.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.quarantined: List[Dict[str, str]] = []

    # ---- corruption handling -------------------------------------------

    def _read_json(self, path: Path, *, label: str) -> Optional[Dict[str, object]]:
        """Read a store payload; quarantine (never silently skip) corruption."""
        if not path.is_file():
            return None
        try:
            return read_json(path, verify=True)
        except IntegrityError as exc:
            reason = str(exc)
        except (OSError, ValueError) as exc:
            reason = "unreadable: %s" % exc
        self._quarantine(path, label, reason)
        return None

    def _quarantine(self, path: Path, label: str, reason: str) -> None:
        quarantine = self.root / QUARANTINE_DIR
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / ("%03d-%s" % (len(self.quarantined), path.name))
        try:
            os.replace(path, target)
            moved = str(target)
        except OSError:
            moved = ""
        self.quarantined.append(
            {
                "payload": label,
                "source": str(path),
                "quarantined_to": moved,
                "reason": reason,
            }
        )
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.incr("bench.quarantined")
            recorder.event("quarantine", payload=label, source=str(path), reason=reason)

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    # ---- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def load_manifest(self) -> Optional[Dict[str, object]]:
        return self._read_json(self.manifest_path, label="manifest")

    def write_manifest(
        self,
        *,
        scale: str,
        scenarios: Mapping[str, List[TaskSpec]],
        run_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Write (or refresh) the manifest describing the planned tasks."""
        existing = self.load_manifest() or {}
        if existing and existing.get("scale") != scale:
            raise StoreError(
                "run directory %s holds a %r-scale run; refusing to mix in %r-scale tasks "
                "(use a fresh --run-dir)" % (self.root, existing.get("scale"), scale)
            )
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "run_id": run_id or existing.get("run_id") or ("run-%d" % int(obs.wall_time())),
            "scale": scale,
            "created_at": existing.get("created_at") or time.strftime("%Y-%m-%dT%H:%M:%S"),
            "updated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenarios": dict(existing.get("scenarios", {})),
        }
        for scenario_id, tasks in scenarios.items():
            manifest["scenarios"][scenario_id] = {
                "tasks": {task.name: task.config_hash(scenario_id) for task in tasks},
            }
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.manifest_path, manifest)
        return manifest

    # ---- task records --------------------------------------------------

    def record_path(self, scenario_id: str, task: TaskSpec) -> Path:
        return self.root / scenario_id / ("%s-%s.json" % (task.name, task.config_hash(scenario_id)))

    def load_record(self, scenario_id: str, task: TaskSpec) -> Optional[Dict[str, object]]:
        """The stored record for ``task``, or ``None`` if absent/stale.

        A corrupt record (truncated by a hard kill, bit-rotted, failing
        its checksum) is quarantined and reported, and the task simply
        re-executes.
        """
        label = "%s/%s" % (scenario_id, task.name)
        record = self._read_json(self.record_path(scenario_id, task), label=label)
        if record is None:
            return None
        if record.get("schema_version") != SCHEMA_VERSION:
            return None
        if record.get("config_hash") != task.config_hash(scenario_id):
            return None
        return record

    def write_record(self, record: Mapping[str, object]) -> Path:
        path = self.root / str(record["scenario_id"])
        path.mkdir(parents=True, exist_ok=True)
        target = path / ("%s-%s.json" % (record["task"], record["config_hash"]))
        atomic_write_json(target, record)
        return target

    # ---- summary -------------------------------------------------------

    @property
    def summary_path(self) -> Path:
        return self.root / SUMMARY_NAME

    def load_summary(self) -> Optional[Dict[str, object]]:
        return self._read_json(self.summary_path, label="summary")

    def write_summary(
        self,
        *,
        scale: str,
        summaries: Mapping[str, ScenarioSummary],
        failures: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        manifest = self.load_manifest() or {}
        existing = self.load_summary() or {}
        merged: Dict[str, object] = dict(existing.get("scenarios", {}))
        for scenario_id, summary in summaries.items():
            merged[scenario_id] = summary.to_dict()
        # Failures merge the other way round: keep what earlier runs into
        # this store reported, clear only entries belonging to scenarios
        # that were successfully (re-)summarized now, then layer the new
        # failures on top.  A later selective run therefore cannot wash
        # out another scenario's failure while its stale summary remains.
        merged_failures: Dict[str, str] = {
            key: message
            for key, message in dict(existing.get("failures", {})).items()
            if key.split("/")[0] not in summaries
        }
        merged_failures.update(dict(failures or {}))
        # Quarantine entries accumulate across runs into the same store;
        # dedup by quarantine target so repeated summaries from one
        # long-lived store instance don't double-report.
        quarantined = list(existing.get("quarantined", {}).get("entries", []))
        seen = {(entry.get("source"), entry.get("quarantined_to")) for entry in quarantined}
        for entry in self.quarantined:
            key = (entry["source"], entry["quarantined_to"])
            if key not in seen:
                quarantined.append(entry)
                seen.add(key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "run_id": manifest.get("run_id", "unknown"),
            "scale": scale,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenarios": merged,
            "failures": merged_failures,
            "quarantined": {"count": len(quarantined), "entries": quarantined},
        }
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.summary_path, payload)
        return payload
