"""Human-readable reporting of a completed run: per-figure tables.

``repro-bench report`` prints every scenario's figure-style table and
key metrics, and can write them as one markdown file per figure — the
nightly CI workflow uploads that directory as its artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping

from repro.bench.scenario import ScenarioSummary


def _summaries(summary_doc: Mapping[str, object]) -> Dict[str, ScenarioSummary]:
    return {
        scenario_id: ScenarioSummary.from_dict(entry)
        for scenario_id, entry in dict(summary_doc.get("scenarios", {})).items()
    }


def format_run(summary_doc: Mapping[str, object]) -> str:
    """The full-text report for one run summary document."""
    lines: List[str] = []
    lines.append(
        "repro-bench run %s (scale: %s, generated: %s)"
        % (
            summary_doc.get("run_id", "unknown"),
            summary_doc.get("scale", "unknown"),
            summary_doc.get("generated_at", "unknown"),
        )
    )
    for scenario_id, summary in sorted(_summaries(summary_doc).items()):
        lines.append("")
        lines.append("=== %s (%d tasks, %.2fs) ===" % (scenario_id, summary.n_tasks, summary.seconds))
        if summary.table:
            lines.append(summary.table)
        for name, value in sorted(summary.metrics.items()):
            lines.append("  %-38s %.6g" % (name, value))
        if summary.over_budget_tasks:
            lines.append("  over budget: %s" % ", ".join(summary.over_budget_tasks))
    failures = dict(summary_doc.get("failures", {}))
    if failures:
        lines.append("")
        lines.append("FAILURES:")
        for key, message in sorted(failures.items()):
            lines.append("  %s: %s" % (key, message.splitlines()[-1]))
    return "\n".join(lines)


def write_tables(summary_doc: Mapping[str, object], output_dir) -> List[Path]:
    """Write one markdown table file per scenario plus an index; return paths."""
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for scenario_id, summary in sorted(_summaries(summary_doc).items()):
        path = output / ("%s.md" % scenario_id)
        lines = [
            "# %s" % scenario_id,
            "",
            "scale: `%s` — %d tasks, %.2fs total" % (summary.scale, summary.n_tasks, summary.seconds),
            "",
        ]
        if summary.table:
            lines += ["```", summary.table, "```", ""]
        lines.append("| metric | value |")
        lines.append("| --- | --- |")
        for name, value in sorted(summary.metrics.items()):
            lines.append("| %s | %.6g |" % (name, value))
        lines.append("")
        path.write_text("\n".join(lines))
        written.append(path)
    index = output / "README.md"
    index.write_text(
        "\n".join(
            ["# repro-bench report", ""]
            + ["- [%s](%s.md)" % (path.stem, path.stem) for path in written]
            + [""]
        )
    )
    written.append(index)
    return written
