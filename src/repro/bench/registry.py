"""Scenario registry: declarative registration and lookup.

Built-in scenarios (the paper's figure suite plus the perf benchmarks)
live in :mod:`repro.bench.scenarios` and are registered lazily on first
lookup, so importing :mod:`repro.bench` stays cheap and process workers
can resolve scenarios by id after a ``spawn`` start.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.scenario import Scenario

_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register ``scenario``; refuses duplicate ids unless ``replace``."""
    if not replace and scenario.scenario_id in _REGISTRY:
        raise ValueError("scenario %r is already registered" % scenario.scenario_id)
    _REGISTRY[scenario.scenario_id] = scenario
    return scenario


def unregister(scenario_id: str) -> None:
    """Remove a scenario (used by tests to clean up synthetic scenarios)."""
    _REGISTRY.pop(scenario_id, None)


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        # Importing the module registers every built-in scenario.
        from repro.bench import scenarios  # noqa: F401


def get(scenario_id: str) -> Scenario:
    """Look up one scenario by id."""
    _ensure_builtins()
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (known: %s)" % (scenario_id, ", ".join(sorted(_REGISTRY)))
        ) from None


def ids() -> List[str]:
    """All registered scenario ids, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def groups() -> List[str]:
    """All distinct scenario groups, sorted."""
    _ensure_builtins()
    return sorted({scenario.group for scenario in _REGISTRY.values()})


def select(
    *,
    scenario_ids: Optional[Sequence[str]] = None,
    group: Optional[str] = None,
) -> List[Scenario]:
    """Scenarios filtered by explicit ids and/or group, in id order."""
    _ensure_builtins()
    if scenario_ids:
        chosen = [get(scenario_id) for scenario_id in scenario_ids]
    else:
        chosen = [_REGISTRY[scenario_id] for scenario_id in sorted(_REGISTRY)]
    if group is not None:
        known = groups()
        if group not in known:
            raise KeyError("unknown scenario group %r (known: %s)" % (group, ", ".join(known)))
        chosen = [scenario for scenario in chosen if scenario.group == group]
    return chosen
