"""Benchmark of the streaming subsystem: sustained throughput + drift recovery.

Measures, on a drifting synthetic stream (a mean shift of one cluster
plus a cluster birth at ``--drift-batch``):

* **sustained throughput** — points/second through
  :meth:`StreamingSSPC.process_batch` over the whole stream (assignment,
  gating, exact folds, drift checks and lifecycle sweeps included);
* **post-drift accuracy recovery** — mean batch ARI over the final
  evaluation window, against ground truth, compared with a **full-refit
  oracle**: SSPC refitted from scratch on the freshest points and scored
  on the same evaluation batches;
* **amortized cost ratio** — the per-point cost of the oracle strategy
  (one full refit amortized over the points of its refresh interval)
  divided by the engine's per-point cost.  The acceptance bar is 10x:
  streaming must be at least an order of magnitude cheaper per point
  than staying current by refitting;
* **drift-free control** — a short stationary stream driven through the
  engine *and* through a bare
  :class:`~repro.serving.index.ProjectedClusterIndex`: per-cluster
  statistics must match bit for bit and no adaptation event may fire
  (the engine adds bookkeeping, never arithmetic).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_stream.py            # reduced scale
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke    # quick CI smoke run

Everything is seeded, so the report is bit-identical across runs and
machines up to floating-point environment differences — which is what
lets the ``stream`` scenario gate its accuracy metrics absolutely.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.sspc import SSPC
from repro.data.streams import ClusterBirth, DriftingStreamGenerator, MeanShift
from repro.evaluation import adjusted_rand_index
from repro.serving.index import ProjectedClusterIndex
from repro.stream.engine import StreamConfig, StreamingSSPC


def build_stream(args: argparse.Namespace, *, drifting: bool) -> DriftingStreamGenerator:
    """The benchmark stream: optional mean shift + birth at ``drift_batch``."""
    events = ()
    if drifting:
        events = (
            MeanShift(batch=args.drift_batch, cluster=0, magnitude=0.35),
            ClusterBirth(batch=args.drift_batch),
        )
    return DriftingStreamGenerator(
        n_dimensions=args.n_dimensions,
        n_clusters=args.n_clusters,
        avg_cluster_dimensionality=args.cluster_dim,
        outlier_fraction=0.05,
        events=events,
        random_state=args.seed,
    )


def fit_initial_model(stream: DriftingStreamGenerator, args: argparse.Namespace) -> SSPC:
    """Fit the pre-stream model on a warmup block."""
    warmup = stream.warmup(args.warmup)
    return SSPC(
        n_clusters=args.n_clusters,
        m=0.5,
        max_iterations=args.fit_iterations,
        random_state=args.seed,
    ).fit(warmup.data)


def engine_config(args: argparse.Namespace) -> StreamConfig:
    return StreamConfig(
        seed=args.seed,
        lifecycle_every=4,
        drift_check_every=2,
        spawn_min_points=max(args.batch_size // 8, 16),
    )


def _batch_ari(batch, labels: np.ndarray) -> float:
    clustered = batch.labels >= 0
    if not np.any(clustered):
        return float("nan")
    return adjusted_rand_index(batch.labels[clustered], labels[clustered])


def run_control(model: SSPC, args: argparse.Namespace) -> bool:
    """Drift-free control: engine statistics must equal bare-index ones."""
    stream = build_stream(args, drifting=False)
    engine = StreamingSSPC(model.to_artifact(), config=engine_config(args))
    index = ProjectedClusterIndex(model.to_artifact())
    for batch in stream.batches(args.control_batches, args.batch_size):
        engine.process_batch(batch.data)
        index.partial_update(batch.data)
    if engine.n_spawned or engine.n_retired or engine.n_drift_refreshes:
        return False
    for position in range(index.n_clusters):
        ours = engine.index.cluster_statistics(position)
        theirs = index.cluster_statistics(position)
        if ours.size != theirs.size:
            return False
        if not (
            np.array_equal(ours.mean, theirs.mean)
            and np.array_equal(ours.variance, theirs.variance)
            and np.array_equal(ours.median_selected, theirs.median_selected)
        ):
            return False
    return True


def run_benchmark(args: argparse.Namespace) -> dict:
    stream = build_stream(args, drifting=True)
    model = fit_initial_model(stream, args)
    control_bit_identical = run_control(model, args)

    engine = StreamingSSPC(model.to_artifact(), config=engine_config(args))
    batches = list(stream.batches(args.n_batches, args.batch_size))
    aris = []
    stream_seconds = 0.0
    for batch in batches:
        start = time.perf_counter()
        result = engine.process_batch(batch.data)
        stream_seconds += time.perf_counter() - start
        aris.append(_batch_ari(batch, result.labels))
    total_points = args.n_batches * args.batch_size
    points_per_sec = total_points / stream_seconds if stream_seconds > 0 else float("inf")

    eval_start = args.n_batches - args.eval_batches
    pre_window = [a for a in aris[1:args.drift_batch] if not np.isnan(a)]
    post_window = [a for a in aris[eval_start:] if not np.isnan(a)]
    pre_drift_ari = float(np.mean(pre_window)) if pre_window else float("nan")
    post_drift_ari = float(np.mean(post_window)) if post_window else float("nan")

    # ---- full-refit oracle ----------------------------------------------
    # The oracle stays current by refitting from scratch on the freshest
    # points every `oracle_refit_every` batches; it trains on the stream
    # slice just before the evaluation window and is scored on the same
    # evaluation batches the engine is.
    train_rows = []
    position = eval_start - 1
    while position >= 0 and sum(block.shape[0] for block in train_rows) < args.oracle_window:
        train_rows.append(batches[position].data)
        position -= 1
    oracle_train = np.concatenate(list(reversed(train_rows)), axis=0)[-args.oracle_window:]
    oracle_k = len(stream.active_cluster_ids(eval_start))
    refit_start = time.perf_counter()
    oracle = SSPC(
        n_clusters=oracle_k,
        m=0.5,
        max_iterations=args.fit_iterations,
        random_state=args.seed,
    ).fit(oracle_train)
    refit_seconds = time.perf_counter() - refit_start
    oracle_index = ProjectedClusterIndex(oracle.to_artifact())
    oracle_window = [
        _batch_ari(batch, oracle_index.predict(batch.data)) for batch in batches[eval_start:]
    ]
    oracle_window = [a for a in oracle_window if not np.isnan(a)]
    oracle_post_ari = float(np.mean(oracle_window)) if oracle_window else float("nan")
    recovery_gap = max(0.0, oracle_post_ari - post_drift_ari)

    refit_points = args.oracle_refit_every * args.batch_size
    refit_cost_per_point = refit_seconds / refit_points
    stream_cost_per_point = stream_seconds / total_points
    amortized_speedup = (
        refit_cost_per_point / stream_cost_per_point
        if stream_cost_per_point > 0
        else float("inf")
    )

    return {
        "config": {
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "cluster_dim": args.cluster_dim,
            "batch_size": args.batch_size,
            "n_batches": args.n_batches,
            "drift_batch": args.drift_batch,
            "eval_batches": args.eval_batches,
            "warmup": args.warmup,
            "fit_iterations": args.fit_iterations,
            "oracle_window": args.oracle_window,
            "oracle_refit_every": args.oracle_refit_every,
            "control_batches": args.control_batches,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "control_bit_identical": bool(control_bit_identical),
        "pre_drift_ari": pre_drift_ari,
        "post_drift_ari": post_drift_ari,
        "oracle_post_ari": oracle_post_ari,
        "recovery_gap_vs_oracle": float(recovery_gap),
        "points_per_sec": float(points_per_sec),
        "stream_seconds": float(stream_seconds),
        "refit_seconds": float(refit_seconds),
        "amortized_speedup_over_refit": float(amortized_speedup),
        "speedup_floor_ok": bool(amortized_speedup >= 10.0),
        "n_spawned": int(engine.n_spawned),
        "n_retired": int(engine.n_retired),
        "n_drift_refreshes": int(engine.n_drift_refreshes),
        "n_clusters_final": int(engine.n_clusters),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-dimensions", type=int, default=60)
    parser.add_argument("--n-clusters", type=int, default=4)
    parser.add_argument("--cluster-dim", type=int, default=8,
                        help="average relevant dimensions per cluster")
    parser.add_argument("--batch-size", type=int, default=250)
    parser.add_argument("--n-batches", type=int, default=48)
    parser.add_argument("--drift-batch", type=int, default=20,
                        help="batch index of the mean shift + cluster birth")
    parser.add_argument("--eval-batches", type=int, default=10,
                        help="final batches forming the recovery evaluation window")
    parser.add_argument("--warmup", type=int, default=1500,
                        help="pre-stream points the initial model is fitted on")
    parser.add_argument("--fit-iterations", type=int, default=12)
    parser.add_argument("--oracle-window", type=int, default=1500,
                        help="freshest points the oracle refit trains on")
    parser.add_argument("--oracle-refit-every", type=int, default=4,
                        help="batches between oracle refits (amortization interval; "
                             "matches the engine's drift-check cadence)")
    parser.add_argument("--control-batches", type=int, default=10,
                        help="stationary batches of the bit-identity control")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_dimensions = min(args.n_dimensions, 40)
        args.n_clusters = min(args.n_clusters, 3)
        args.cluster_dim = min(args.cluster_dim, 6)
        args.batch_size = min(args.batch_size, 150)
        args.n_batches = min(args.n_batches, 30)
        args.drift_batch = min(args.drift_batch, 10)
        args.eval_batches = min(args.eval_batches, 6)
        args.warmup = min(args.warmup, 900)
        args.fit_iterations = min(args.fit_iterations, 10)
        args.oracle_window = min(args.oracle_window, 900)
        args.control_batches = min(args.control_batches, 8)
    if args.drift_batch >= args.n_batches - args.eval_batches:
        parser.error("--drift-batch must leave room for the evaluation window")

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("SSPC streaming benchmark (d=%d, k=%d, %d batches of %d)" % (
        args.n_dimensions, args.n_clusters, args.n_batches, args.batch_size))
    print("  sustained throughput : %.0f points/s" % report["points_per_sec"])
    print("  pre-drift ARI        : %.3f" % report["pre_drift_ari"])
    print("  post-drift ARI       : %.3f (oracle %.3f, gap %.3f)" % (
        report["post_drift_ari"], report["oracle_post_ari"],
        report["recovery_gap_vs_oracle"]))
    print("  amortized vs refit   : %.1fx cheaper per point (floor 10x: %s)" % (
        report["amortized_speedup_over_refit"], report["speedup_floor_ok"]))
    print("  adaptation           : %d spawned, %d retired, %d drift refreshes" % (
        report["n_spawned"], report["n_retired"], report["n_drift_refreshes"]))
    print("  drift-free control   : bit-identical = %s" % report["control_bit_identical"])
    if args.output:
        print("  report written to %s" % args.output)
    return 0 if report["control_bit_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
