"""Benchmark of the serving subsystem: inference throughput + artifact I/O.

Measures, on a model fitted at the paper-scale configuration
(default d=100, k=10):

* **batch throughput** — points/second of
  :meth:`ProjectedClusterIndex.predict` over large out-of-sample query
  batches (the fused grouped kernel), best of ``--repeats`` runs;
* **single-point throughput** — the scalar reference path, for the
  batching speedup headline;
* **artifact round trip** — seconds to ``save`` + ``load`` the model
  artifact, and a **divergence gate**: predictions from the reloaded
  artifact must be bit-identical to the in-memory ones, and the batch
  path bit-identical to the single-point path (the script exits non-zero
  otherwise, so CI can use it as a correctness gate).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full (d=100, k=10)
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke    # quick CI smoke run

``--output`` writes the report as JSON (the committed baselines live in
``BENCH_smoke.json`` / ``BENCH_reduced.json`` through the
``repro-bench`` gate).  ``--min-points-per-sec`` turns the throughput
number into a gate as well (the acceptance bar is 10k points/sec at
d=100, k=10; the batched numpy kernel measures orders of magnitude
above that).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.sspc import SSPC
from repro.data.generator import SyntheticDataGenerator
from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex


def build_dataset(n_objects: int, n_dimensions: int, n_clusters: int, seed: int):
    """Synthetic projected-cluster dataset matching the paper's model."""
    return SyntheticDataGenerator(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=max(n_dimensions // 10, 3),
        outlier_fraction=0.05,
        random_state=seed,
    ).generate(seed)


def build_queries(dataset, n_queries: int, seed: int) -> np.ndarray:
    """Out-of-sample traffic: jittered in-cluster points plus background noise."""
    rng = np.random.default_rng(seed + 1)
    data = dataset.data
    n_near = n_queries // 2
    near = data[rng.integers(0, data.shape[0], size=n_near)]
    near = near + rng.normal(scale=0.05 * data.std(), size=near.shape)
    noise = rng.uniform(data.min(axis=0), data.max(axis=0),
                        size=(n_queries - n_near, data.shape[1]))
    queries = np.vstack([near, noise])
    rng.shuffle(queries, axis=0)
    return queries


def run_benchmark(args: argparse.Namespace) -> dict:
    dataset = build_dataset(args.n_objects, args.n_dimensions, args.n_clusters, args.seed)
    fit_start = time.perf_counter()
    model = SSPC(
        n_clusters=args.n_clusters,
        m=0.5,
        max_iterations=args.fit_iterations,
        random_state=args.seed,
    ).fit(dataset.data)
    fit_seconds = time.perf_counter() - fit_start

    queries = build_queries(dataset, args.n_queries, args.seed)
    index = ProjectedClusterIndex(model.to_artifact())

    # ---- batch throughput ------------------------------------------------
    batch_times = []
    for _ in range(args.repeats):
        start = time.perf_counter()
        labels_batch = index.predict(queries)
        batch_times.append(time.perf_counter() - start)
    batch_points_per_sec = args.n_queries / min(batch_times)

    # Peak-memory probe (tracemalloc, reported info-only): one untimed
    # batch predict through the index's blocked assignment plan.
    tracemalloc.start()
    index.predict(queries)
    _, predict_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # ---- single-point reference path ------------------------------------
    n_single = min(args.n_single, args.n_queries)
    start = time.perf_counter()
    labels_single = np.asarray(
        [index.predict_one(point) for point in queries[:n_single]]
    )
    single_seconds = time.perf_counter() - start
    single_points_per_sec = n_single / single_seconds if single_seconds > 0 else float("inf")
    batch_equals_single = bool(
        np.array_equal(labels_batch[:n_single], labels_single)
    )

    # ---- artifact round trip --------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = Path(tmp) / "model"
        save_start = time.perf_counter()
        model.save(artifact_path)
        save_seconds = time.perf_counter() - save_start
        load_start = time.perf_counter()
        loaded = load_artifact(artifact_path)
        load_seconds = time.perf_counter() - load_start
        artifact_bytes = sum(
            entry.stat().st_size for entry in artifact_path.iterdir()
        )
    labels_reloaded = ProjectedClusterIndex(loaded).predict(queries)
    roundtrip_identical = bool(np.array_equal(labels_batch, labels_reloaded))

    n_outliers = int(np.count_nonzero(labels_batch == -1))
    return {
        "config": {
            "n_objects": args.n_objects,
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "n_queries": args.n_queries,
            "n_single": n_single,
            "repeats": args.repeats,
            "fit_iterations": args.fit_iterations,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "fit_seconds": fit_seconds,
        "batch_points_per_sec": batch_points_per_sec,
        "batch_seconds_best": min(batch_times),
        "single_points_per_sec": single_points_per_sec,
        "batch_speedup_over_single": batch_points_per_sec / single_points_per_sec,
        "artifact_save_seconds": save_seconds,
        "artifact_load_seconds": load_seconds,
        "artifact_roundtrip_seconds": save_seconds + load_seconds,
        "artifact_bytes": artifact_bytes,
        "predict_peak_mib": predict_peak / (1024.0 ** 2),
        "queries_marked_outlier": n_outliers,
        "batch_equals_single": batch_equals_single,
        "roundtrip_predictions_identical": roundtrip_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-objects", type=int, default=5000,
                        help="training-set size for the fitted model")
    parser.add_argument("--n-dimensions", type=int, default=100)
    parser.add_argument("--n-clusters", type=int, default=10)
    parser.add_argument("--n-queries", type=int, default=200_000,
                        help="out-of-sample points per timed batch")
    parser.add_argument("--n-single", type=int, default=2000,
                        help="points scored through the scalar reference path")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed batch runs; the best run is reported")
    parser.add_argument("--fit-iterations", type=int, default=10,
                        help="SSPC max_iterations for the one-off fit")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs "
                             "(keeps d and k at the gate configuration)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only; "
                             "committed baselines live in BENCH_smoke.json / "
                             "BENCH_reduced.json via repro-bench)")
    parser.add_argument("--min-points-per-sec", type=float, default=None,
                        help="exit non-zero when batch throughput falls below this")
    args = parser.parse_args(argv)
    for name in ("n_objects", "n_dimensions", "n_clusters", "n_queries",
                 "n_single", "repeats", "fit_iterations"):
        if getattr(args, name) < 1:
            parser.error("--%s must be at least 1" % name.replace("_", "-"))
    if args.smoke:
        # d and k stay at the acceptance configuration; only the fit size,
        # query volume and fit length shrink.
        args.n_objects = min(args.n_objects, 800)
        args.n_queries = min(args.n_queries, 20_000)
        args.n_single = min(args.n_single, 500)
        args.fit_iterations = min(args.fit_iterations, 3)

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("SSPC serving benchmark (d=%d, k=%d, %d queries)" % (
        args.n_dimensions, args.n_clusters, args.n_queries))
    print("  fit (one-off)        : %.2f s" % report["fit_seconds"])
    print("  batch inference      : %.0f points/s" % report["batch_points_per_sec"])
    print("  single-point path    : %.0f points/s (batch speedup %.1fx)" % (
        report["single_points_per_sec"], report["batch_speedup_over_single"]))
    print("  artifact round trip  : save %.4f s + load %.4f s (%.1f KiB)" % (
        report["artifact_save_seconds"], report["artifact_load_seconds"],
        report["artifact_bytes"] / 1024.0))
    print("  predict peak memory  : %.2f MiB" % report["predict_peak_mib"])
    print("  outlier gate         : %d/%d queries rejected" % (
        report["queries_marked_outlier"], args.n_queries))
    print("  batch == single      : %s" % report["batch_equals_single"])
    print("  round trip identical : %s" % report["roundtrip_predictions_identical"])
    if args.output:
        print("  report written to %s" % args.output)

    if not report["batch_equals_single"]:
        print("ERROR: batch and single-point paths diverged", file=sys.stderr)
        return 1
    if not report["roundtrip_predictions_identical"]:
        print("ERROR: predictions diverged after artifact save/load", file=sys.stderr)
        return 1
    if (args.min_points_per_sec is not None
            and report["batch_points_per_sec"] < args.min_points_per_sec):
        print("ERROR: throughput %.0f points/s below required %.0f" % (
            report["batch_points_per_sec"], args.min_points_per_sec), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
