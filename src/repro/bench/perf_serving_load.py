"""Load benchmark of the serving daemon: micro-batched HTTP throughput.

Boots a real :class:`~repro.server.app.PredictServer` (loopback TCP,
hand-rolled HTTP/1.1) inside the benchmark's event loop and drives it
with single-point ``/predict`` requests in three phases:

1. **sequential floor** — one keep-alive connection, one request at a
   time.  This is the daemon's un-batched unit of account: what a
   client sees with zero concurrency.
2. **capacity** — a closed-loop pool of ``--connections`` keep-alive
   connections.  Concurrent singles coalesce in the micro-batcher and
   ride the blocked kernel together; sustained requests/sec here over
   the floor is the **batching speedup** the daemon buys (the
   acceptance gate: >= 4x at the smoke configuration, workers=0).
3. **Poisson open-loop** — requests scheduled by a Poisson process at
   ``--open-utilization`` of the measured capacity; latency is counted
   from the *scheduled* arrival, not the send (no coordinated
   omission), and reported as p50/p99.

Every label returned over HTTP — all three phases — is compared
bit-for-bit against an in-process
:meth:`~repro.serving.index.ProjectedClusterIndex.predict` over the
same queries; any mismatch fails the run.

The client deliberately shares the server's event loop: on a
single-core CI shard a separate load-generator process would steal the
daemon's CPU and measure scheduler contention instead of serving
throughput.  Ratios (speedup) are robust to the shared-loop overhead
because both phases pay it.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serving_load.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving_load.py --workers 2

``--output`` writes the JSON report; committed floors live in
``BENCH_smoke.json`` / ``BENCH_reduced.json`` via ``repro-bench``.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.perf_serving import build_dataset, build_queries
from repro.core.sspc import SSPC
from repro.obs.histogram import nearest_rank
from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.server.app import PredictServer, ServerConfig


def _make_request_bytes(point: np.ndarray) -> bytes:
    """Pre-serialized ``POST /predict`` — client overhead off the clock."""
    payload = json.dumps({"point": [float(value) for value in point]}).encode("ascii")
    return (
        b"POST /predict HTTP/1.1\r\n"
        b"Host: bench\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(payload)).encode("ascii") + b"\r\n\r\n" + payload
    )


async def _read_label(reader: asyncio.StreamReader) -> int:
    """Read one HTTP response off a keep-alive connection; return the label."""
    header = await reader.readuntil(b"\r\n\r\n")
    content_length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            content_length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(content_length) if content_length else b""
    status = int(header.split(b" ", 2)[1])
    if status != 200:
        raise RuntimeError("server returned %d: %s" % (status, body[:200].decode("utf-8", "replace")))
    return int(json.loads(body)["label"])


def _percentile_ms(latencies_s: List[float], fraction: float) -> float:
    return nearest_rank(sorted(latencies_s), fraction) * 1e3


async def _run_phases(args: argparse.Namespace, artifact_path: str, queries: np.ndarray) -> dict:
    config = ServerConfig(
        port=0,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
    )
    server = PredictServer(artifact_path, config)
    host, port = await server.start()
    bodies = [_make_request_bytes(point) for point in queries]
    # query index -> label seen over HTTP, for the bit-identity gate
    seen: Dict[int, int] = {}

    # Cyclic GC off for the timed phases (re-enabled in the finally):
    # when the host process carries a large heap (the repro-bench
    # orchestrator imports every experiment module), full collections
    # triggered by the request storm show up as tail-latency spikes that
    # measure the caller's heap size, not the daemon.  This mirrors how
    # latency-sensitive services deploy (collect + freeze at boot).
    gc.collect()
    gc.disable()
    try:
        # ---- warmup + sequential floor -------------------------------
        reader, writer = await asyncio.open_connection(host, port)
        for index in range(min(args.warmup, len(bodies))):
            writer.write(bodies[index])
            await _read_label(reader)
        n_sequential = min(args.n_sequential, len(bodies))
        start = time.perf_counter()
        for index in range(n_sequential):
            writer.write(bodies[index])
            seen[index] = await _read_label(reader)
        sequential_pps = n_sequential / (time.perf_counter() - start)
        writer.close()

        # ---- capacity: closed loop over the connection pool ----------
        connections: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        for _ in range(args.connections):
            connections.append(await asyncio.open_connection(host, port))
        n_capacity = min(args.n_capacity, len(bodies))
        cursor = {"next": 0}

        async def capacity_worker(conn) -> None:
            conn_reader, conn_writer = conn
            while cursor["next"] < n_capacity:
                index = cursor["next"]
                cursor["next"] += 1
                conn_writer.write(bodies[index])
                seen[index] = await _read_label(conn_reader)

        start = time.perf_counter()
        await asyncio.gather(*(capacity_worker(conn) for conn in connections))
        capacity_pps = n_capacity / (time.perf_counter() - start)

        # ---- Poisson open loop at a fraction of measured capacity ----
        offered_pps = args.open_utilization * capacity_pps
        n_open = min(args.n_open, len(bodies))
        gaps = np.random.default_rng(args.seed + 2).exponential(
            scale=1.0 / offered_pps, size=n_open
        )
        arrivals = np.cumsum(gaps)
        free: asyncio.Queue = asyncio.Queue()
        for conn in connections:
            free.put_nowait(conn)
        latencies: List[float] = []

        async def open_loop_request(index: int, scheduled: float, epoch: float) -> None:
            conn = await free.get()
            conn_reader, conn_writer = conn
            try:
                conn_writer.write(bodies[index])
                seen[index] = await _read_label(conn_reader)
            finally:
                free.put_nowait(conn)
            # Latency from the *scheduled* arrival: queueing for a free
            # connection and scheduler lag stay on the clock.
            latencies.append(time.perf_counter() - (epoch + scheduled))

        epoch = time.perf_counter()
        open_tasks = []
        for index in range(n_open):
            delay = (epoch + arrivals[index]) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            open_tasks.append(
                asyncio.ensure_future(open_loop_request(index, arrivals[index], epoch))
            )
        await asyncio.gather(*open_tasks)
        open_wall = time.perf_counter() - epoch
        for _, conn_writer in connections:
            conn_writer.close()

        batcher_snapshot = server.batcher.stats.snapshot()
    finally:
        gc.enable()
        await server.stop()

    return {
        "sequential_points_per_sec": sequential_pps,
        "batched_points_per_sec": capacity_pps,
        "batching_speedup": capacity_pps / sequential_pps,
        "offered_points_per_sec": offered_pps,
        "achieved_open_loop_pps": n_open / open_wall,
        "p50_latency_ms": _percentile_ms(latencies, 0.50),
        "p99_latency_ms": _percentile_ms(latencies, 0.99),
        "batcher": batcher_snapshot,
        "labels_seen": seen,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    dataset = build_dataset(args.n_objects, args.n_dimensions, args.n_clusters, args.seed)
    fit_start = time.perf_counter()
    model = SSPC(
        n_clusters=args.n_clusters,
        m=0.5,
        max_iterations=args.fit_iterations,
        random_state=args.seed,
    ).fit(dataset.data)
    fit_seconds = time.perf_counter() - fit_start

    n_queries = max(args.n_sequential + args.warmup, args.n_capacity, args.n_open)
    queries = build_queries(dataset, n_queries, args.seed)

    with tempfile.TemporaryDirectory(prefix="repro-serving-load-") as tmp:
        artifact_path = "%s/model" % tmp
        model.to_artifact().save(artifact_path)
        phases = asyncio.run(_run_phases(args, artifact_path, queries))
        reference_labels = ProjectedClusterIndex(load_artifact(artifact_path)).predict(queries)

    seen = phases.pop("labels_seen")
    labels_bit_identical = all(
        reference_labels[index] == label for index, label in seen.items()
    )

    return {
        "config": {
            "n_objects": args.n_objects,
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "fit_iterations": args.fit_iterations,
            "workers": args.workers,
            "max_batch": args.max_batch,
            "max_wait_us": args.max_wait_us,
            "connections": args.connections,
            "warmup": args.warmup,
            "n_sequential": args.n_sequential,
            "n_capacity": args.n_capacity,
            "n_open": args.n_open,
            "open_utilization": args.open_utilization,
            "min_speedup": args.min_speedup,
            "p99_budget_ms": args.p99_budget_ms,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "fit_seconds": fit_seconds,
        **phases,
        "n_labels_checked": len(seen),
        "labels_bit_identical": bool(labels_bit_identical),
        "speedup_floor_ok": bool(phases["batching_speedup"] >= args.min_speedup),
        "p99_within_budget": bool(phases["p99_latency_ms"] <= args.p99_budget_ms),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-objects", type=int, default=5000,
                        help="training-set size for the fitted model")
    parser.add_argument("--n-dimensions", type=int, default=100)
    parser.add_argument("--n-clusters", type=int, default=10)
    parser.add_argument("--fit-iterations", type=int, default=10,
                        help="SSPC max_iterations for the one-off fit")
    parser.add_argument("--workers", type=int, default=0,
                        help="server worker processes (0 = in-process backend)")
    parser.add_argument("--max-batch", type=int, default=128,
                        help="micro-batcher flush size")
    parser.add_argument("--max-wait-us", type=float, default=5000.0,
                        help="micro-batcher deadline in microseconds")
    parser.add_argument("--connections", type=int, default=128,
                        help="client connection-pool size for the load phases")
    parser.add_argument("--warmup", type=int, default=20,
                        help="untimed requests before the sequential floor")
    parser.add_argument("--n-sequential", type=int, default=500,
                        help="requests in the sequential-floor phase")
    parser.add_argument("--n-capacity", type=int, default=8000,
                        help="requests in the closed-loop capacity phase")
    parser.add_argument("--n-open", type=int, default=6000,
                        help="requests in the Poisson open-loop phase")
    parser.add_argument("--open-utilization", type=float, default=0.6,
                        help="Poisson offered rate as a fraction of measured capacity")
    parser.add_argument("--min-speedup", type=float, default=4.0,
                        help="gate: batched throughput must be this multiple of the floor")
    parser.add_argument("--p99-budget-ms", type=float, default=150.0,
                        help="gate: open-loop p99 latency budget")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs "
                             "(keeps d, k and the batching knobs at the gate configuration)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only)")
    args = parser.parse_args(argv)
    for name in ("n_objects", "n_dimensions", "n_clusters", "fit_iterations",
                 "connections", "n_sequential", "n_capacity", "n_open"):
        if getattr(args, name) < 1:
            parser.error("--%s must be at least 1" % name.replace("_", "-"))
    if args.workers < 0:
        parser.error("--workers may not be negative")
    if not 0.0 < args.open_utilization <= 1.0:
        parser.error("--open-utilization must be in (0, 1]")
    if args.smoke:
        # d, k and the batcher knobs stay at the acceptance configuration;
        # only the fit size, request volumes and fit length shrink.
        args.n_objects = min(args.n_objects, 800)
        args.fit_iterations = min(args.fit_iterations, 3)
        args.n_sequential = min(args.n_sequential, 300)
        args.n_capacity = min(args.n_capacity, 5000)
        args.n_open = min(args.n_open, 3000)

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("SSPC serving-load benchmark (d=%d, k=%d, workers=%d, %d conns)" % (
        args.n_dimensions, args.n_clusters, args.workers, args.connections))
    print("  fit (one-off)        : %.2f s" % report["fit_seconds"])
    print("  sequential floor     : %.0f req/s (%d requests)" % (
        report["sequential_points_per_sec"], args.n_sequential))
    print("  batched capacity     : %.0f req/s (%d requests)" % (
        report["batched_points_per_sec"], args.n_capacity))
    print("  batching speedup     : %.2fx (gate >= %.1fx: %s)" % (
        report["batching_speedup"], args.min_speedup, report["speedup_floor_ok"]))
    print("  open loop            : offered %.0f req/s, achieved %.0f req/s" % (
        report["offered_points_per_sec"], report["achieved_open_loop_pps"]))
    print("  latency              : p50 %.1f ms, p99 %.1f ms (budget %.0f ms: %s)" % (
        report["p50_latency_ms"], report["p99_latency_ms"],
        args.p99_budget_ms, report["p99_within_budget"]))
    batcher = report["batcher"]
    print("  batcher              : %d flushes, mean batch %.1f, reasons %s" % (
        batcher.get("n_flushes", 0), batcher.get("mean_batch_size", 0.0),
        batcher.get("flush_reasons", {})))
    print("  labels bit-identical : %s (%d checked)" % (
        report["labels_bit_identical"], report["n_labels_checked"]))
    if args.output:
        print("  report written to %s" % args.output)

    if not report["labels_bit_identical"]:
        print("ERROR: HTTP labels diverged from the in-process index", file=sys.stderr)
        return 1
    if not report["speedup_floor_ok"]:
        print("ERROR: batching speedup %.2fx below required %.1fx" % (
            report["batching_speedup"], args.min_speedup), file=sys.stderr)
        return 1
    if not report["p99_within_budget"]:
        print("ERROR: open-loop p99 %.1f ms over budget %.0f ms" % (
            report["p99_latency_ms"], args.p99_budget_ms), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
