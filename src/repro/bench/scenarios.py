"""The built-in scenario catalogue: every figure and perf benchmark as data.

Each registration declares the scenario's identity (figure reference,
shard group), its ``smoke`` / ``reduced`` / ``paper`` configurations, a
*plan* that fans the configuration out into independently seeded tasks
(sweep points, categories, axes ...), the *execute* function for one
task and the *aggregate* extractor that folds the task payloads back
into figure-level metrics and a printable table.

Seeding: every plan derives one integer seed per task from the
configuration's root seed via :func:`repro.utils.rng.spawn_rngs`, so a
task's result is bit-identical no matter which worker executes it —
this is what makes ``--workers N`` equal to ``--workers 1``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.bench import registry
from repro.bench.chaos import (
    PAPER_CONFIG as _CHAOS_PAPER,
    REDUCED_CONFIG as _CHAOS_REDUCED,
    SMOKE_CONFIG as _CHAOS_SMOKE,
    chaos_aggregate,
    chaos_execute,
    chaos_plan,
)
from repro.bench.scenario import MetricSpec, Scenario, TaskSpec
from repro.bench.perf_assignment import run_benchmark as run_assignment_benchmark
from repro.bench.perf_hotpath import run_benchmark as run_hotpath_benchmark
from repro.bench.perf_obs import run_benchmark as run_obs_benchmark
from repro.bench.perf_serving import run_benchmark as run_serving_benchmark
from repro.bench.perf_serving_load import run_benchmark as run_serving_load_benchmark
from repro.bench.perf_stream import run_benchmark as run_stream_benchmark
from repro.data.generator import make_projected_clusters
from repro.data.multigroup import make_multigroup_dataset
from repro.experiments.ablations import (
    AblationRow,
    format_ablation_table,
    run_initialisation_ablation,
    run_representative_ablation,
    run_threshold_scheme_ablation,
)
from repro.experiments.harness import ExperimentResult, format_series_table
from repro.experiments.knowledge_analysis import KnowledgeAnalysisResult, run_figure1, run_figure2
from repro.experiments.knowledge_input import run_coverage_experiment, run_input_size_experiment
from repro.experiments.multiple_groupings import (
    MultiGroupingRow,
    format_multigrouping_table,
    run_multiple_groupings,
)
from repro.experiments.outlier_immunity import run_outlier_immunity
from repro.experiments.parameter_sensitivity import run_parameter_sensitivity
from repro.experiments.raw_accuracy import run_raw_accuracy
from repro.experiments.scalability import (
    ScalabilityRow,
    format_scalability_table,
    linear_fit_quality,
    run_scalability,
)
from repro.utils.rng import random_seed_from, spawn_rngs


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _task_seeds(root_seed: int, count: int) -> List[int]:
    """One deterministic, independent integer seed per task."""
    return [random_seed_from(rng) for rng in spawn_rngs(int(root_seed), count)]


def _result_to_dict(row: ExperimentResult) -> Dict[str, object]:
    return {
        "algorithm": row.algorithm,
        "configuration": dict(row.configuration),
        "ari": float(row.ari),
        "objective": float(row.objective),
        "runtime_seconds": float(row.runtime_seconds),
        "n_outliers": int(row.n_outliers),
        "extra": {key: float(value) for key, value in row.extra.items()},
    }


def _result_from_dict(payload: Mapping[str, object]) -> ExperimentResult:
    return ExperimentResult(
        algorithm=str(payload["algorithm"]),
        configuration=dict(payload["configuration"]),
        ari=float(payload["ari"]),
        objective=float(payload["objective"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        n_outliers=int(payload["n_outliers"]),
        extra=dict(payload.get("extra", {})),
    )


def _collect_rows(payloads: Sequence[Mapping[str, object]]) -> List[ExperimentResult]:
    rows: List[ExperimentResult] = []
    for payload in payloads:
        rows.extend(_result_from_dict(entry) for entry in payload["rows"])
    return rows


def _series(rows: Sequence[ExperimentResult], prefix: str, x_key: str) -> Dict[str, float]:
    return {
        str(row.configuration[x_key]): row.ari
        for row in rows
        if row.algorithm.startswith(prefix)
    }


def _mean(values) -> float:
    values = list(values)
    return float(np.mean(values)) if values else float("nan")


# ---------------------------------------------------------------------------
# Figures 1-2: analytical knowledge-requirement curves
# ---------------------------------------------------------------------------


def _plan_knowledge_analysis(config: Mapping[str, object]) -> List[TaskSpec]:
    fractions = list(config["relevant_fractions"])
    tasks = []
    for fraction in fractions:
        params = {key: value for key, value in config.items() if key != "relevant_fractions"}
        params["fraction"] = float(fraction)
        tasks.append(TaskSpec(name="frac-%03d" % int(round(fraction * 1000)), params=params))
    return tasks


def _execute_figure1(params: Mapping[str, object]) -> Dict[str, object]:
    result = run_figure1(
        input_sizes=list(params["input_sizes"]),
        relevant_fractions=(float(params["fraction"]),),
        n_dimensions=int(params["n_dimensions"]),
        p=float(params["p"]),
        grid_dimensions=int(params["grid_dimensions"]),
        n_grids=int(params["n_grids"]),
        variance_ratio=float(params["variance_ratio"]),
    )
    return {
        "fraction": float(params["fraction"]),
        "input_sizes": list(result.input_sizes),
        "probabilities": [float(value) for value in result.probabilities[0]],
    }


def _execute_figure2(params: Mapping[str, object]) -> Dict[str, object]:
    result = run_figure2(
        input_sizes=list(params["input_sizes"]),
        relevant_fractions=(float(params["fraction"]),),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        grid_dimensions=int(params["grid_dimensions"]),
        n_grids=int(params["n_grids"]),
    )
    return {
        "fraction": float(params["fraction"]),
        "input_sizes": list(result.input_sizes),
        "probabilities": [float(value) for value in result.probabilities[0]],
        "n_dimensions": int(params["n_dimensions"]),
    }


def _knowledge_curves(payloads: Sequence[Mapping[str, object]]):
    ordered = sorted(payloads, key=lambda payload: payload["fraction"])
    input_sizes = list(ordered[0]["input_sizes"])
    fractions = [payload["fraction"] for payload in ordered]
    matrix = np.array([payload["probabilities"] for payload in ordered])
    table = KnowledgeAnalysisResult(
        input_sizes=input_sizes,
        relevant_fractions=fractions,
        probabilities=matrix,
    ).as_table()
    curves = {
        "%g" % fraction: [float(value) for value in row]
        for fraction, row in zip(fractions, matrix)
    }
    return input_sizes, fractions, matrix, table, curves


def _probability_at(input_sizes, fractions, matrix, fraction: float, size: int) -> float:
    return float(matrix[fractions.index(fraction), input_sizes.index(size)])


def _aggregate_figure1(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    input_sizes, fractions, matrix, table, curves = _knowledge_curves(payloads)
    monotonic = all(
        all(b >= a - 1e-9 for a, b in zip(row, row[1:])) for row in matrix
    )
    return {
        "metrics": {
            "prob_size5_frac5": _probability_at(input_sizes, fractions, matrix, 0.05, 5),
            "prob_size5_frac1": _probability_at(input_sizes, fractions, matrix, 0.01, 5),
            "monotonic": 1.0 if monotonic else 0.0,
            "mean_probability": float(matrix.mean()),
        },
        "table": table,
        "details": {"input_sizes": input_sizes, "curves": curves},
    }


def _aggregate_figure2(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    input_sizes, fractions, matrix, table, curves = _knowledge_curves(payloads)
    p_5_frac1 = _probability_at(input_sizes, fractions, matrix, 0.01, 5)
    p_5_frac10 = _probability_at(input_sizes, fractions, matrix, 0.10, 5)
    # Complementarity with Figure 1: at di/d = 1% and 3 labeled items,
    # labeled dimensions beat labeled objects (closed form, cheap).
    figure1 = run_figure1(
        input_sizes=[3],
        relevant_fractions=[0.01],
        n_dimensions=int(payloads[0]["n_dimensions"]),
    )
    p3_objects = float(figure1.probabilities[0, 0])
    p3_dimensions = _probability_at(input_sizes, fractions, matrix, 0.01, 3)
    return {
        "metrics": {
            "prob_size5_frac1": p_5_frac1,
            "low_dim_advantage": p_5_frac1 - p_5_frac10,
            "dims_beat_objects_at3": 1.0 if p3_dimensions > p3_objects else 0.0,
            "mean_probability": float(matrix.mean()),
        },
        "table": table,
        "details": {
            "input_sizes": input_sizes,
            "curves": curves,
            "figure1_frac1_size3": p3_objects,
        },
    }


# ---------------------------------------------------------------------------
# Figure 3: raw accuracy vs average cluster dimensionality
# ---------------------------------------------------------------------------


def _plan_figure3(config: Mapping[str, object]) -> List[TaskSpec]:
    dimensionalities = [int(value) for value in config["dimensionalities"]]
    seeds = _task_seeds(int(config["seed"]), len(dimensionalities))
    return [
        TaskSpec(
            name="l-%03d" % l_real,
            params={
                "l_real": l_real,
                "n_objects": int(config["n_objects"]),
                "n_dimensions": int(config["n_dimensions"]),
                "n_clusters": int(config["n_clusters"]),
                "n_repeats": int(config["n_repeats"]),
                "include_clarans": bool(config["include_clarans"]),
                "include_harp": bool(config["include_harp"]),
                "seed": seed,
            },
        )
        for l_real, seed in zip(dimensionalities, seeds)
    ]


def _execute_figure3(params: Mapping[str, object]) -> Dict[str, object]:
    rows = run_raw_accuracy(
        dimensionalities=(int(params["l_real"]),),
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        n_repeats=int(params["n_repeats"]),
        include_clarans=bool(params["include_clarans"]),
        include_harp=bool(params["include_harp"]),
        random_state=int(params["seed"]),
    )
    return {"rows": [_result_to_dict(row) for row in rows]}


def _aggregate_figure3(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = sorted(_collect_rows(payloads), key=lambda row: row.configuration["l_real"])
    sspc_m = _series(rows, "SSPC(m", "l_real")
    clarans = _series(rows, "CLARANS", "l_real")
    l_values = sorted(sspc_m, key=float)
    metrics = {
        "sspc_m_mean_ari": _mean(sspc_m.values()),
        "sspc_p_mean_ari": _mean(_series(rows, "SSPC(p", "l_real").values()),
        "proclus_mean_ari": _mean(_series(rows, "PROCLUS", "l_real").values()),
        "sspc_lowest_l_ari": float(sspc_m[l_values[0]]),
        "sspc_highest_l_ari": float(sspc_m[l_values[-1]]),
    }
    if clarans:
        metrics["clarans_mean_ari"] = _mean(clarans.values())
        metrics["sspc_advantage_over_clarans"] = (
            metrics["sspc_m_mean_ari"] - metrics["clarans_mean_ari"]
        )
    series = {}
    for row in rows:
        series.setdefault(row.algorithm, {})[str(row.configuration["l_real"])] = float(row.ari)
    return {
        "metrics": metrics,
        "table": format_series_table(rows, x_key="l_real"),
        "details": {"series": series},
    }


# ---------------------------------------------------------------------------
# Figure 4: parameter sensitivity
# ---------------------------------------------------------------------------

_FIGURE4_FAMILIES = ("proclus_l", "sspc_m", "sspc_p")


def _plan_figure4(config: Mapping[str, object]) -> List[TaskSpec]:
    # All three sweeps share the same root seed, so the dataset (drawn
    # first inside the runner) is identical across the family tasks.
    return [
        TaskSpec(
            name="family-%s" % family,
            params={
                "family": family,
                "values": list(config["%s_values" % family]),
                "n_objects": int(config["n_objects"]),
                "n_dimensions": int(config["n_dimensions"]),
                "n_clusters": int(config["n_clusters"]),
                "l_real": int(config["l_real"]),
                "n_repeats": int(config["n_repeats"]),
                "seed": int(config["seed"]),
            },
        )
        for family in _FIGURE4_FAMILIES
    ]


def _execute_figure4(params: Mapping[str, object]) -> Dict[str, object]:
    family = str(params["family"])
    values = tuple(params["values"])
    rows = run_parameter_sensitivity(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        l_real=int(params["l_real"]),
        proclus_l_values=values if family == "proclus_l" else (),
        sspc_m_values=values if family == "sspc_m" else (),
        sspc_p_values=values if family == "sspc_p" else (),
        n_repeats=int(params["n_repeats"]),
        random_state=int(params["seed"]),
    )
    return {"rows": [_result_to_dict(row) for row in rows]}


def _aggregate_figure4(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = _collect_rows(payloads)
    by_algorithm: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_algorithm.setdefault(row.algorithm, {})[str(row.configuration["value"])] = float(row.ari)
    sspc_m = list(by_algorithm.get("SSPC(m)", {}).values())
    sspc_p = list(by_algorithm.get("SSPC(p)", {}).values())
    proclus = by_algorithm.get("PROCLUS", {})
    proclus_values = list(proclus.values())
    table_lines = ["%-10s %-10s %8s" % ("algorithm", "value", "ARI")]
    for row in rows:
        table_lines.append(
            "%-10s %-10s %8.3f" % (row.algorithm, str(row.configuration["value"]), row.ari)
        )
    return {
        "metrics": {
            "sspc_m_min_ari": float(min(sspc_m)),
            "sspc_p_min_ari": float(min(sspc_p)),
            "sspc_m_spread": float(max(sspc_m) - min(sspc_m)),
            "proclus_spread": float(max(proclus_values) - min(proclus_values)),
            "proclus_best_l": float(max(proclus, key=proclus.get)),
        },
        "table": "\n".join(table_lines),
        "details": {"series": by_algorithm},
    }


# ---------------------------------------------------------------------------
# Figures 5-6: accuracy with input knowledge
# ---------------------------------------------------------------------------


def _plan_knowledge_input(config: Mapping[str, object]) -> List[TaskSpec]:
    categories = list(config["categories"])
    seeds = _task_seeds(int(config["seed"]), len(categories))
    tasks = []
    for category, seed in zip(categories, seeds):
        params = {key: value for key, value in config.items() if key != "categories"}
        params["category"] = category
        params["seed"] = seed
        tasks.append(TaskSpec(name="category-%s" % category, params=params))
    return tasks


def _knowledge_input_dataset(params: Mapping[str, object]):
    return make_projected_clusters(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        avg_cluster_dimensionality=int(params["l_real"]),
        random_state=int(params["dataset_seed"]),
    )


def _execute_figure5(params: Mapping[str, object]) -> Dict[str, object]:
    rows = run_input_size_experiment(
        input_sizes=[int(value) for value in params["input_sizes"]],
        categories=(str(params["category"]),),
        dataset=_knowledge_input_dataset(params),
        n_knowledge_draws=int(params["n_knowledge_draws"]),
        random_state=int(params["seed"]),
    )
    return {"rows": [_result_to_dict(row) for row in rows]}


def _execute_figure6(params: Mapping[str, object]) -> Dict[str, object]:
    rows = run_coverage_experiment(
        coverages=[float(value) for value in params["coverages"]],
        categories=(str(params["category"]),),
        dataset=_knowledge_input_dataset(params),
        input_size=int(params["input_size"]),
        n_knowledge_draws=int(params["n_knowledge_draws"]),
        random_state=int(params["seed"]),
    )
    return {"rows": [_result_to_dict(row) for row in rows]}


def _knowledge_input_series(rows: Sequence[ExperimentResult], x_key: str):
    series: Dict[str, Dict[str, float]] = {}
    for row in rows:
        category = str(row.configuration["category"])
        series.setdefault(category, {})[str(row.configuration[x_key])] = float(row.ari)
    return series


def _knowledge_input_table(rows: Sequence[ExperimentResult], x_key: str) -> str:
    blocks = []
    for category in sorted({str(row.configuration["category"]) for row in rows}):
        subset = [row for row in rows if row.configuration["category"] == category]
        blocks.append("-- category: %s" % category)
        blocks.append(format_series_table(subset, x_key=x_key))
    return "\n".join(blocks)


def _aggregate_figure5(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = _collect_rows(payloads)
    series = _knowledge_input_series(rows, "input_size")
    gains = {}
    largest_aris = {}
    for category, curve in series.items():
        sizes = sorted(curve, key=float)
        gains[category] = curve[sizes[-1]] - curve[sizes[0]]
        largest_aris[category] = curve[sizes[-1]]
    return {
        "metrics": {
            "knowledge_gain_min": float(min(gains.values())),
            "dimensions_largest_ari": float(largest_aris.get("dimensions", float("nan"))),
            "both_largest_ari": float(largest_aris.get("both", float("nan"))),
        },
        "table": _knowledge_input_table(rows, "input_size"),
        "details": {"series": series},
    }


def _aggregate_figure6(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = _collect_rows(payloads)
    series = _knowledge_input_series(rows, "coverage")
    gains, recoveries, full_aris = [], [], []
    for curve in series.values():
        coverages = sorted(curve, key=float)
        none_ari, full_ari = curve[coverages[0]], curve[coverages[-1]]
        gains.append(full_ari - none_ari)
        full_aris.append(full_ari)
        partial = [c for c in coverages if 0.5 <= float(c) < 1.0]
        if partial:
            recoveries.append(
                (curve[partial[-1]] - none_ari) - 0.5 * (full_ari - none_ari)
            )
    metrics = {
        "coverage_gain_min": float(min(gains)),
        "full_coverage_ari_min": float(min(full_aris)),
    }
    if recoveries:
        metrics["partial_recovery_margin"] = float(min(recoveries))
    return {
        "metrics": metrics,
        "table": _knowledge_input_table(rows, "coverage"),
        "details": {"series": series},
    }


# ---------------------------------------------------------------------------
# Figure 7: multiple groupings
# ---------------------------------------------------------------------------


def _plan_figure7(config: Mapping[str, object]) -> List[TaskSpec]:
    return [TaskSpec(name="all", params=dict(config))]


def _execute_figure7(params: Mapping[str, object]) -> Dict[str, object]:
    dataset = make_multigroup_dataset(
        n_objects=int(params["n_objects"]),
        n_dimensions_per_grouping=int(params["n_dimensions_per_grouping"]),
        n_clusters=int(params["n_clusters"]),
        avg_cluster_dimensionality=int(params["l_real"]),
        random_state=int(params["dataset_seed"]),
    )
    rows = run_multiple_groupings(
        dataset=dataset,
        n_clusters=int(params["n_clusters"]),
        avg_cluster_dimensionality=int(params["l_real"]),
        input_size=int(params["input_size"]),
        include_harp=bool(params["include_harp"]),
        include_proclus=bool(params["include_proclus"]),
        n_repeats=int(params["n_repeats"]),
        random_state=int(params["seed"]),
    )
    return {
        "rows": [
            {
                "algorithm": row.algorithm,
                "guidance": row.guidance,
                "ari_grouping1": float(row.ari_grouping1),
                "ari_grouping2": float(row.ari_grouping2),
            }
            for row in rows
        ],
    }


def _aggregate_figure7(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = [
        MultiGroupingRow(
            algorithm=str(entry["algorithm"]),
            guidance=str(entry["guidance"]),
            ari_grouping1=float(entry["ari_grouping1"]),
            ari_grouping2=float(entry["ari_grouping2"]),
        )
        for payload in payloads
        for entry in payload["rows"]
    ]
    guided1 = [r for r in rows if r.algorithm == "SSPC" and r.guidance == "grouping 1"][0]
    guided2 = [r for r in rows if r.algorithm == "SSPC" and r.guidance == "grouping 2"][0]
    return {
        "metrics": {
            "guided1_margin": float(guided1.ari_grouping1 - guided1.ari_grouping2),
            "guided2_margin": float(guided2.ari_grouping2 - guided2.ari_grouping1),
            "guided1_target_ari": float(guided1.ari_grouping1),
            "guided2_target_ari": float(guided2.ari_grouping2),
        },
        "table": format_multigrouping_table(rows),
        "details": {
            "rows": [
                {
                    "algorithm": row.algorithm,
                    "guidance": row.guidance,
                    "ari_grouping1": row.ari_grouping1,
                    "ari_grouping2": row.ari_grouping2,
                }
                for row in rows
            ],
        },
    }


# ---------------------------------------------------------------------------
# Figure 8: scalability
# ---------------------------------------------------------------------------


def _plan_figure8(config: Mapping[str, object]) -> List[TaskSpec]:
    points = [("n_objects", int(size)) for size in config["object_counts"]]
    points += [("n_dimensions", int(size)) for size in config["dimension_counts"]]
    seeds = _task_seeds(int(config["seed"]), len(points))
    tasks = []
    for (axis, size), seed in zip(points, seeds):
        tasks.append(
            TaskSpec(
                name="%s-%05d" % (axis.replace("n_", ""), size),
                params={
                    "axis": axis,
                    "size": size,
                    "base_objects": int(config["base_objects"]),
                    "base_dimensions": int(config["base_dimensions"]),
                    "n_clusters": int(config["n_clusters"]),
                    "l_real": int(config["l_real"]),
                    "n_repeats": int(config["n_repeats"]),
                    "seed": seed,
                },
            )
        )
    return tasks


def _execute_figure8(params: Mapping[str, object]) -> Dict[str, object]:
    axis = str(params["axis"])
    rows = run_scalability(
        object_counts=(int(params["size"]),) if axis == "n_objects" else (),
        dimension_counts=(int(params["size"]),) if axis == "n_dimensions" else (),
        base_objects=int(params["base_objects"]),
        base_dimensions=int(params["base_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        l_real=int(params["l_real"]),
        n_repeats=int(params["n_repeats"]),
        random_state=int(params["seed"]),
    )
    return {
        "rows": [
            {
                "algorithm": row.algorithm,
                "axis": row.axis,
                "size": int(row.size),
                "total_seconds": float(row.total_seconds),
                "n_repeats": int(row.n_repeats),
            }
            for row in rows
        ],
    }


def _aggregate_figure8(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = [
        ScalabilityRow(
            algorithm=str(entry["algorithm"]),
            axis=str(entry["axis"]),
            size=int(entry["size"]),
            total_seconds=float(entry["total_seconds"]),
            n_repeats=int(entry["n_repeats"]),
        )
        for payload in payloads
        for entry in payload["rows"]
    ]
    metrics: Dict[str, float] = {"total_seconds": float(sum(r.total_seconds for r in rows))}
    for axis in ("n_objects", "n_dimensions"):
        fit = linear_fit_quality(rows, "SSPC", axis)
        short = axis.replace("n_", "")
        metrics["sspc_%s_slope_positive" % short] = 1.0 if fit["slope"] > 0 else 0.0
        metrics["sspc_%s_r_squared" % short] = float(fit["r_squared"])
        sspc = sorted((r for r in rows if r.algorithm == "SSPC" and r.axis == axis),
                      key=lambda r: r.size)
        proclus = sorted((r for r in rows if r.algorithm == "PROCLUS" and r.axis == axis),
                         key=lambda r: r.size)
        metrics["sspc_vs_proclus_%s" % short] = float(
            sspc[-1].total_seconds / max(proclus[-1].total_seconds, 1e-3)
        )
    return {
        "metrics": metrics,
        "table": format_scalability_table(rows),
        "details": {},
    }


# ---------------------------------------------------------------------------
# Outlier immunity (Section 5.2)
# ---------------------------------------------------------------------------


def _plan_outliers(config: Mapping[str, object]) -> List[TaskSpec]:
    fractions = [float(value) for value in config["outlier_fractions"]]
    seeds = _task_seeds(int(config["seed"]), len(fractions))
    return [
        TaskSpec(
            name="fraction-%03d" % int(round(fraction * 100)),
            params={
                "outlier_fraction": fraction,
                "n_objects": int(config["n_objects"]),
                "n_dimensions": int(config["n_dimensions"]),
                "n_clusters": int(config["n_clusters"]),
                "l_real": int(config["l_real"]),
                "n_repeats": int(config["n_repeats"]),
                "seed": seed,
            },
        )
        for fraction, seed in zip(fractions, seeds)
    ]


def _execute_outliers(params: Mapping[str, object]) -> Dict[str, object]:
    rows = run_outlier_immunity(
        outlier_fractions=(float(params["outlier_fraction"]),),
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        l_real=int(params["l_real"]),
        n_repeats=int(params["n_repeats"]),
        random_state=int(params["seed"]),
    )
    return {"rows": [_result_to_dict(row) for row in rows]}


def _aggregate_outliers(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = sorted(
        _collect_rows(payloads), key=lambda row: float(row.configuration["outlier_fraction"])
    )
    clean, dirty = rows[0], rows[-1]
    table_lines = [
        "%-18s %8s %14s %18s %18s"
        % ("outlier fraction", "ARI", "true outliers", "detected outliers", "outlier recall"),
    ]
    for row in rows:
        table_lines.append(
            "%-18s %8.3f %14d %18d %18.3f"
            % (
                row.configuration["outlier_fraction"],
                row.ari,
                int(row.extra["true_outliers"]),
                int(row.extra["detected_outliers"]),
                row.extra["outlier_recall"],
            )
        )
    return {
        "metrics": {
            "clean_ari": float(clean.ari),
            "dirty_ari": float(dirty.ari),
            "ari_drop": float(clean.ari - dirty.ari),
            "dirty_outlier_recall": float(dirty.extra["outlier_recall"]),
        },
        "table": "\n".join(table_lines),
        "details": {
            "by_fraction": {
                str(row.configuration["outlier_fraction"]): {
                    "ari": row.ari,
                    "extra": dict(row.extra),
                }
                for row in rows
            },
        },
    }


# ---------------------------------------------------------------------------
# Ablations A1-A3
# ---------------------------------------------------------------------------

_ABLATION_RUNNERS = {
    "representative": run_representative_ablation,
    "initialisation": run_initialisation_ablation,
    "threshold_scheme": run_threshold_scheme_ablation,
}


def _plan_ablations(config: Mapping[str, object]) -> List[TaskSpec]:
    return [
        TaskSpec(
            name="a%d-%s" % (index + 1, ablation),
            params={
                "ablation": ablation,
                "kwargs": dict(config[ablation]),
            },
        )
        for index, ablation in enumerate(("representative", "initialisation", "threshold_scheme"))
    ]


def _execute_ablations(params: Mapping[str, object]) -> Dict[str, object]:
    runner = _ABLATION_RUNNERS[str(params["ablation"])]
    rows = runner(**dict(params["kwargs"]))
    return {
        "rows": [
            {
                "ablation": row.ablation,
                "variant": row.variant,
                "configuration": dict(row.configuration),
                "ari": float(row.ari),
            }
            for row in rows
        ],
    }


def _aggregate_ablations(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    rows = [
        AblationRow(
            ablation=str(entry["ablation"]),
            variant=str(entry["variant"]),
            configuration=dict(entry["configuration"]),
            ari=float(entry["ari"]),
        )
        for payload in payloads
        for entry in payload["rows"]
    ]
    by_variant = {row.variant: row.ari for row in rows}
    threshold_aris = [row.ari for row in rows if row.ablation == "threshold scheme"]
    return {
        "metrics": {
            "representative_margin": float(
                by_variant["median (paper)"] - by_variant["mean (ablated)"]
            ),
            "initialisation_margin": float(
                by_variant["seed groups (paper)"] - by_variant["random medoids (ablated)"]
            ),
            "threshold_min_ari": float(min(threshold_aris)),
        },
        "table": format_ablation_table(rows),
        "details": {"by_variant": by_variant},
    }


# ---------------------------------------------------------------------------
# Perf: hot path + serving
# ---------------------------------------------------------------------------


#: Hard floor on batched serving throughput (points/sec) — the old CI
#: smoke gate's acceptance bar, far under any healthy measurement.
SERVING_MIN_POINTS_PER_SEC = 10_000


def _plan_single(config: Mapping[str, object]) -> List[TaskSpec]:
    return [TaskSpec(name="all", params=dict(config))]


def _execute_hotpath(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        iterations=int(params["iterations"]),
        repeats=int(params["repeats"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_hotpath_benchmark(args)


def _aggregate_hotpath(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    table = "\n".join(
        [
            "naive     : %.4f s/iteration (%d statistics passes)"
            % (report["naive_seconds_per_iteration"], report["stat_passes_naive_last_repeat"]),
            "optimized : %.4f s/iteration (%d statistics passes)"
            % (
                report["optimized_seconds_per_iteration"],
                report["stat_passes_optimized_last_repeat"],
            ),
            "speedup   : %.2fx   stat-pass reduction: %.2fx"
            % (report["speedup"], report["stat_pass_reduction"]),
            "peak mem  : naive %.2f MiB, optimized %.2f MiB"
            % (
                report.get("peak_naive_mib", float("nan")),
                report.get("peak_optimized_mib", float("nan")),
            ),
            "results identical: %s" % report["results_identical"],
        ]
    )
    return {
        "metrics": {
            "speedup": float(report["speedup"]),
            "stat_pass_reduction": float(report["stat_pass_reduction"]),
            "results_identical": 1.0 if report["results_identical"] else 0.0,
            "naive_seconds_per_iteration": float(report["naive_seconds_per_iteration"]),
            "optimized_seconds_per_iteration": float(report["optimized_seconds_per_iteration"]),
            "peak_naive_mib": float(report.get("peak_naive_mib", float("nan"))),
            "peak_optimized_mib": float(report.get("peak_optimized_mib", float("nan"))),
        },
        "table": table,
        "details": {"report": report},
    }


def _execute_serving(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        n_queries=int(params["n_queries"]),
        n_single=int(params["n_single"]),
        repeats=int(params["repeats"]),
        fit_iterations=int(params["fit_iterations"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_serving_benchmark(args)


def _aggregate_serving(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    table = "\n".join(
        [
            "batch inference   : %.0f points/s" % report["batch_points_per_sec"],
            "single-point path : %.0f points/s (batch speedup %.1fx)"
            % (report["single_points_per_sec"], report["batch_speedup_over_single"]),
            "artifact roundtrip: %.4f s (%.1f KiB)"
            % (report["artifact_roundtrip_seconds"], report["artifact_bytes"] / 1024.0),
            "predict peak mem  : %.2f MiB" % report.get("predict_peak_mib", float("nan")),
            "batch == single   : %s" % report["batch_equals_single"],
            "roundtrip identical: %s" % report["roundtrip_predictions_identical"],
        ]
    )
    return {
        "metrics": {
            "batch_speedup_over_single": float(report["batch_speedup_over_single"]),
            # Absolute floor carried over from the old CI gate
            # (--min-points-per-sec 10000): ~40x under the measured
            # throughput, it catches catastrophic kernel regressions that
            # slow batch and single-point paths equally (invisible to the
            # speedup ratio) while staying immune to runner noise.
            "throughput_floor_ok": (
                1.0 if report["batch_points_per_sec"] >= SERVING_MIN_POINTS_PER_SEC else 0.0
            ),
            "batch_equals_single": 1.0 if report["batch_equals_single"] else 0.0,
            "roundtrip_predictions_identical": (
                1.0 if report["roundtrip_predictions_identical"] else 0.0
            ),
            "batch_points_per_sec": float(report["batch_points_per_sec"]),
            "artifact_roundtrip_seconds": float(report["artifact_roundtrip_seconds"]),
            "predict_peak_mib": float(report.get("predict_peak_mib", float("nan"))),
            "queries_marked_outlier": float(report["queries_marked_outlier"]),
        },
        "table": table,
        "details": {"report": report},
    }


def _execute_serving_load(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        fit_iterations=int(params["fit_iterations"]),
        workers=int(params["workers"]),
        max_batch=int(params["max_batch"]),
        max_wait_us=float(params["max_wait_us"]),
        connections=int(params["connections"]),
        warmup=int(params["warmup"]),
        n_sequential=int(params["n_sequential"]),
        n_capacity=int(params["n_capacity"]),
        n_open=int(params["n_open"]),
        open_utilization=float(params["open_utilization"]),
        min_speedup=float(params["min_speedup"]),
        p99_budget_ms=float(params["p99_budget_ms"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_serving_load_benchmark(args)


def _aggregate_serving_load(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    batcher = report.get("batcher", {})
    table = "\n".join(
        [
            "sequential floor : %.0f req/s" % report["sequential_points_per_sec"],
            "batched capacity : %.0f req/s (speedup %.2fx)"
            % (report["batched_points_per_sec"], report["batching_speedup"]),
            "open loop        : offered %.0f req/s, achieved %.0f req/s"
            % (report["offered_points_per_sec"], report["achieved_open_loop_pps"]),
            "latency          : p50 %.1f ms, p99 %.1f ms"
            % (report["p50_latency_ms"], report["p99_latency_ms"]),
            "batcher          : mean batch %.1f over %d flushes"
            % (batcher.get("mean_batch_size", 0.0), batcher.get("n_flushes", 0)),
            "bit-identical    : %s (%d labels)"
            % (report["labels_bit_identical"], report["n_labels_checked"]),
        ]
    )
    return {
        "metrics": {
            "labels_bit_identical": 1.0 if report["labels_bit_identical"] else 0.0,
            # The absolute claim rides the boolean floor (>= min_speedup
            # measured in-process, both phases equally contended); the
            # raw ratio is additionally tracked with a wide tolerance
            # for trend visibility on shared runners.
            "speedup_floor_ok": 1.0 if report["speedup_floor_ok"] else 0.0,
            "p99_within_budget": 1.0 if report["p99_within_budget"] else 0.0,
            "batching_speedup": float(report["batching_speedup"]),
            "sequential_points_per_sec": float(report["sequential_points_per_sec"]),
            "batched_points_per_sec": float(report["batched_points_per_sec"]),
            "p50_latency_ms": float(report["p50_latency_ms"]),
            "p99_latency_ms": float(report["p99_latency_ms"]),
            "mean_batch_size": float(batcher.get("mean_batch_size", 0.0)),
            "achieved_open_loop_pps": float(report["achieved_open_loop_pps"]),
        },
        "table": table,
        "details": {"report": report},
    }


def _execute_obs(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        fit_iterations=int(params["fit_iterations"]),
        stream_batches=int(params["stream_batches"]),
        batch_size=int(params["batch_size"]),
        telemetry_requests=int(params.get("telemetry_requests", 400)),
        repeats=int(params["repeats"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_obs_benchmark(args)


def _aggregate_obs(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    table = "\n".join(
        [
            "workload (disabled) : %.3f s" % report["disabled_seconds"],
            "workload (enabled)  : %.3f s (%+.1f%%, info only)"
            % (report["enabled_seconds"], report["overhead_enabled_pct"]),
            "hook crossings      : %d at %.1f ns disabled"
            % (report["n_hook_calls"], report["per_hook_disabled_ns"]),
            "telemetry records   : %d at %.0f ns each"
            % (report["n_telemetry_requests"], report["per_telemetry_record_ns"]),
            "disabled overhead   : %.4f%% (bound incl. telemetry; gate < 2%%)"
            % report["overhead_disabled_pct"],
            "bit identical       : %s" % report["enabled_bit_identical"],
            "subsystems spanned  : %s" % ", ".join(report["categories"]),
        ]
    )
    return {
        "metrics": {
            "overhead_disabled_ok": 1.0 if report["overhead_disabled_ok"] else 0.0,
            "enabled_bit_identical": 1.0 if report["enabled_bit_identical"] else 0.0,
            "subsystem_coverage_ok": 1.0 if report["subsystem_coverage_ok"] else 0.0,
            "overhead_disabled_pct": float(report["overhead_disabled_pct"]),
            "overhead_enabled_pct": float(report["overhead_enabled_pct"]),
            "n_hook_calls": float(report["n_hook_calls"]),
            "per_hook_disabled_ns": float(report["per_hook_disabled_ns"]),
            "n_telemetry_requests": float(report["n_telemetry_requests"]),
            "per_telemetry_record_ns": float(report["per_telemetry_record_ns"]),
            "telemetry_overhead_pct": float(report["telemetry_overhead_pct"]),
            "n_subsystems": float(len(report["categories"])),
        },
        "table": table,
        "details": {"report": report},
    }


def _execute_assignment(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_objects=int(params["n_objects"]),
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        rounds=int(params["rounds"]),
        repeats=int(params["repeats"]),
        block_rows=int(params["block_rows"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_assignment_benchmark(args)


def _aggregate_assignment(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    lines = []
    for fraction in report["dirty_fractions"]:
        point = report["sweep"]["%g" % fraction]
        lines.append(
            "dirty %4.0f%% : naive %.3f ms  engine %.3f ms  speedup %.2fx"
            % (
                float(fraction) * 100,
                point["naive_seconds_per_round"] * 1e3,
                point["engine_seconds_per_round"] * 1e3,
                point["speedup"],
            )
        )
    for backend, entry in report["backend_sweep"].items():
        full = entry["sweep"]["%g" % report["dirty_fractions"][0]]
        lines.append(
            "backend %-9s: full recompute %.3f ms (%.2fx vs naive)  %s"
            % (
                backend,
                full["engine_seconds_per_round"] * 1e3,
                full["speedup"],
                entry["detail"],
            )
        )
    for backend, reason in report["skipped_backends"].items():
        lines.append("backend %-9s: SKIPPED (%s)" % (backend, reason))
    lines.append(
        "threaded vs reference (full): %.2fx on %d core(s), floor %.2fx"
        % (
            report["threaded_full_speedup"],
            report["threaded_cores"],
            report["threaded_floor_effective"],
        )
    )
    lines.append(
        "peak memory : broadcast %.2f MiB  blocked %.2f MiB"
        % (report["peak_broadcast_mib"], report["peak_blocked_mib"])
    )
    lines.append("results identical: %s" % report["results_identical"])
    return {
        "metrics": {
            "results_identical": 1.0 if report["results_identical"] else 0.0,
            # Hard >=2x floor on the near-converged (<=10% dirty)
            # regime: bit-exact booleans gate absolutely, so runner
            # speed cannot flake it the way a raw ratio could.
            "near_converged_floor_ok": 1.0 if report["near_converged_floor_ok"] else 0.0,
            "near_converged_speedup": float(report["near_converged_speedup"]),
            "half_dirty_speedup": float(report["half_dirty_speedup"]),
            "full_recompute_speedup": float(report["full_recompute_speedup"]),
            "naive_seconds_per_round": float(report["naive_seconds_per_round"]),
            "engine_seconds_per_round": float(report["engine_seconds_per_round"]),
            "peak_broadcast_mib": float(report["peak_broadcast_mib"]),
            "peak_blocked_mib": float(report["peak_blocked_mib"]),
            "blocked_memory_fraction": float(report["blocked_memory_fraction"]),
            # Backend-sweep gates (booleans gate absolutely; the raw
            # threaded ratio is informational because its floor is
            # core- and workload-aware inside perf_assignment itself).
            "backends_bit_identical": 1.0 if report["backends_bit_identical"] else 0.0,
            "float32_within_tolerance": (
                1.0 if report["float32_within_tolerance"] else 0.0
            ),
            "threaded_floor_ok": 1.0 if report["threaded_floor_ok"] else 0.0,
            "threaded_full_speedup": float(report["threaded_full_speedup"]),
            "float32_max_abs_deviation": float(report["float32_max_abs_deviation"]),
            "compiled_available": 1.0 if report["compiled_available"] else 0.0,
        },
        "table": "\n".join(lines),
        "details": {"report": report},
    }


def _execute_stream(params: Mapping[str, object]) -> Dict[str, object]:
    args = argparse.Namespace(
        n_dimensions=int(params["n_dimensions"]),
        n_clusters=int(params["n_clusters"]),
        cluster_dim=int(params["cluster_dim"]),
        batch_size=int(params["batch_size"]),
        n_batches=int(params["n_batches"]),
        drift_batch=int(params["drift_batch"]),
        eval_batches=int(params["eval_batches"]),
        warmup=int(params["warmup"]),
        fit_iterations=int(params["fit_iterations"]),
        oracle_window=int(params["oracle_window"]),
        oracle_refit_every=int(params["oracle_refit_every"]),
        control_batches=int(params["control_batches"]),
        seed=int(params["seed"]),
        smoke=False,
    )
    return run_stream_benchmark(args)


def _aggregate_stream(payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    report = dict(payloads[0])
    table = "\n".join(
        [
            "sustained throughput : %.0f points/s" % report["points_per_sec"],
            "pre-drift ARI        : %.3f" % report["pre_drift_ari"],
            "post-drift ARI       : %.3f (oracle %.3f, gap %.3f)"
            % (
                report["post_drift_ari"],
                report["oracle_post_ari"],
                report["recovery_gap_vs_oracle"],
            ),
            "amortized vs refit   : %.1fx cheaper per point" % (
                report["amortized_speedup_over_refit"]
            ),
            "adaptation           : %d spawned, %d retired, %d drift refreshes"
            % (report["n_spawned"], report["n_retired"], report["n_drift_refreshes"]),
            "drift-free control   : bit-identical = %s" % report["control_bit_identical"],
        ]
    )
    return {
        "metrics": {
            # The streaming layer must add zero arithmetic over the
            # serving primitive on a drift-free stream.
            "control_bit_identical": 1.0 if report["control_bit_identical"] else 0.0,
            "pre_drift_ari": float(report["pre_drift_ari"]),
            "post_drift_ari": float(report["post_drift_ari"]),
            "recovery_gap_vs_oracle": float(report["recovery_gap_vs_oracle"]),
            # Hard 10x floor on the amortized per-point advantage over a
            # stay-current-by-refitting oracle.  The ratio divides two
            # timings from the same process, so runner speed cancels to
            # first order and the floor is safe to gate absolutely.
            "speedup_floor_ok": 1.0 if report["speedup_floor_ok"] else 0.0,
            "amortized_speedup_over_refit": float(report["amortized_speedup_over_refit"]),
            "points_per_sec": float(report["points_per_sec"]),
            "stream_seconds": float(report["stream_seconds"]),
            "refit_seconds": float(report["refit_seconds"]),
            "n_spawned": float(report["n_spawned"]),
            "n_drift_refreshes": float(report["n_drift_refreshes"]),
            "oracle_post_ari": float(report["oracle_post_ari"]),
        },
        "table": table,
        "details": {"report": report},
    }


# ---------------------------------------------------------------------------
# registrations
# ---------------------------------------------------------------------------

_ANALYSIS_COMMON = {"p": 0.01, "grid_dimensions": 3, "n_grids": 20, "variance_ratio": 0.15}

registry.register(
    Scenario(
        scenario_id="figure1_knowledge_analysis",
        figure="Figure 1",
        title="P(all-relevant grid) vs labeled objects (analytical)",
        group="knowledge",
        scale_configs={
            "smoke": {
                "input_sizes": list(range(0, 7)),
                "relevant_fractions": [0.01, 0.05],
                "n_dimensions": 1500,
                **_ANALYSIS_COMMON,
            },
            "reduced": {
                "input_sizes": list(range(0, 21)),
                "relevant_fractions": [0.01, 0.02, 0.05, 0.10],
                "n_dimensions": 3000,
                **_ANALYSIS_COMMON,
            },
            "paper": {
                "input_sizes": list(range(0, 21)),
                "relevant_fractions": [0.01, 0.02, 0.05, 0.10],
                "n_dimensions": 3000,
                **_ANALYSIS_COMMON,
            },
        },
        plan=_plan_knowledge_analysis,
        execute=_execute_figure1,
        aggregate=_aggregate_figure1,
        metrics=(
            MetricSpec("prob_size5_frac5", "accuracy", "higher", 0.02),
            MetricSpec("prob_size5_frac1", "accuracy", "match", 0.02),
            MetricSpec("monotonic", "accuracy", "higher", 0.0),
            MetricSpec("mean_probability", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure2_knowledge_analysis",
        figure="Figure 2",
        title="P(exclusively-relevant grid) vs labeled dimensions (analytical)",
        group="knowledge",
        scale_configs={
            "smoke": {
                "input_sizes": list(range(0, 7)),
                "relevant_fractions": [0.01, 0.10],
                "n_dimensions": 1500,
                "n_clusters": 5,
                "grid_dimensions": 3,
                "n_grids": 20,
            },
            "reduced": {
                "input_sizes": list(range(0, 21)),
                "relevant_fractions": [0.01, 0.02, 0.05, 0.10],
                "n_dimensions": 3000,
                "n_clusters": 5,
                "grid_dimensions": 3,
                "n_grids": 20,
            },
            "paper": {
                "input_sizes": list(range(0, 21)),
                "relevant_fractions": [0.01, 0.02, 0.05, 0.10],
                "n_dimensions": 3000,
                "n_clusters": 5,
                "grid_dimensions": 3,
                "n_grids": 20,
            },
        },
        plan=_plan_knowledge_analysis,
        execute=_execute_figure2,
        aggregate=_aggregate_figure2,
        metrics=(
            MetricSpec("prob_size5_frac1", "accuracy", "higher", 0.02),
            MetricSpec("low_dim_advantage", "accuracy", "higher", 0.02),
            MetricSpec("dims_beat_objects_at3", "accuracy", "higher", 0.0),
            MetricSpec("mean_probability", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure3_raw_accuracy",
        figure="Figure 3",
        title="Best-of-repeats ARI vs average cluster dimensionality, no knowledge",
        group="accuracy",
        scale_configs={
            "smoke": {
                "dimensionalities": [5, 20],
                "n_objects": 160,
                "n_dimensions": 50,
                "n_clusters": 4,
                "n_repeats": 1,
                "include_clarans": True,
                "include_harp": True,
                "seed": 0,
            },
            "reduced": {
                "dimensionalities": [5, 10, 20, 40],
                "n_objects": 400,
                "n_dimensions": 100,
                "n_clusters": 5,
                "n_repeats": 2,
                "include_clarans": True,
                "include_harp": True,
                "seed": 0,
            },
            "paper": {
                "dimensionalities": [5, 10, 20, 30, 40],
                "n_objects": 1000,
                "n_dimensions": 100,
                "n_clusters": 5,
                "n_repeats": 10,
                "include_clarans": True,
                "include_harp": True,
                "seed": 0,
            },
        },
        plan=_plan_figure3,
        execute=_execute_figure3,
        aggregate=_aggregate_figure3,
        metrics=(
            MetricSpec("sspc_m_mean_ari", "accuracy", "higher", 0.15),
            MetricSpec("sspc_p_mean_ari", "accuracy", "higher", 0.15),
            MetricSpec("sspc_lowest_l_ari", "accuracy", "higher", 0.15),
            MetricSpec("sspc_advantage_over_clarans", "accuracy", "higher", 0.15),
            MetricSpec("proclus_mean_ari", "info"),
            MetricSpec("clarans_mean_ari", "info"),
            MetricSpec("sspc_highest_l_ari", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure4_parameter_sensitivity",
        figure="Figure 4",
        title="ARI under swept parameters: PROCLUS l vs SSPC m / p",
        group="accuracy",
        scale_configs={
            "smoke": {
                "n_objects": 160,
                "n_dimensions": 50,
                "n_clusters": 4,
                "l_real": 10,
                "proclus_l_values": [6, 10, 14],
                "sspc_m_values": [0.1, 0.5, 0.9],
                "sspc_p_values": [0.01, 0.1],
                "n_repeats": 1,
                "seed": 1,
            },
            "reduced": {
                "n_objects": 400,
                "n_dimensions": 100,
                "n_clusters": 5,
                "l_real": 10,
                "proclus_l_values": [2, 6, 10, 14, 18],
                "sspc_m_values": [0.1, 0.3, 0.5, 0.7, 0.9],
                "sspc_p_values": [0.001, 0.01, 0.1, 0.2],
                "n_repeats": 2,
                "seed": 1,
            },
            "paper": {
                "n_objects": 1000,
                "n_dimensions": 100,
                "n_clusters": 5,
                "l_real": 10,
                "proclus_l_values": [2, 4, 6, 8, 10, 12, 14, 16, 18],
                "sspc_m_values": [0.1, 0.3, 0.5, 0.7, 0.9],
                "sspc_p_values": [0.001, 0.01, 0.05, 0.1, 0.2],
                "n_repeats": 5,
                "seed": 1,
            },
        },
        plan=_plan_figure4,
        execute=_execute_figure4,
        aggregate=_aggregate_figure4,
        metrics=(
            MetricSpec("sspc_m_min_ari", "accuracy", "higher", 0.15),
            MetricSpec("sspc_p_min_ari", "accuracy", "higher", 0.15),
            MetricSpec("sspc_m_spread", "accuracy", "lower", 0.15),
            MetricSpec("proclus_spread", "info"),
            MetricSpec("proclus_best_l", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure5_input_size",
        figure="Figure 5",
        title="Median ARI vs input size at full coverage (1%-dimensional clusters)",
        group="knowledge",
        scale_configs={
            "smoke": {
                "categories": ["objects", "dimensions", "both"],
                "input_sizes": [0, 4],
                "n_objects": 120,
                "n_dimensions": 400,
                "n_clusters": 5,
                "l_real": 4,
                "n_knowledge_draws": 2,
                "dataset_seed": 10,
                "seed": 10,
            },
            "reduced": {
                "categories": ["objects", "dimensions", "both"],
                "input_sizes": [0, 2, 4, 6],
                "n_objects": 150,
                "n_dimensions": 800,
                "n_clusters": 5,
                "l_real": 8,
                "n_knowledge_draws": 3,
                "dataset_seed": 10,
                "seed": 10,
            },
            "paper": {
                "categories": ["objects", "dimensions", "both"],
                "input_sizes": [0, 2, 3, 4, 5, 6, 7, 8],
                "n_objects": 150,
                "n_dimensions": 3000,
                "n_clusters": 5,
                "l_real": 30,
                "n_knowledge_draws": 10,
                "dataset_seed": 10,
                "seed": 10,
            },
        },
        plan=_plan_knowledge_input,
        execute=_execute_figure5,
        aggregate=_aggregate_figure5,
        metrics=(
            MetricSpec("knowledge_gain_min", "accuracy", "higher", 0.2),
            MetricSpec("dimensions_largest_ari", "accuracy", "higher", 0.2),
            MetricSpec("both_largest_ari", "accuracy", "higher", 0.2),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure6_coverage",
        figure="Figure 6",
        title="Median ARI vs knowledge coverage at fixed input size",
        group="knowledge",
        scale_configs={
            "smoke": {
                "categories": ["both"],
                "coverages": [0.0, 0.6, 1.0],
                "input_size": 6,
                "n_objects": 120,
                "n_dimensions": 400,
                "n_clusters": 5,
                "l_real": 4,
                "n_knowledge_draws": 2,
                "dataset_seed": 11,
                "seed": 11,
            },
            "reduced": {
                "categories": ["dimensions", "both"],
                "coverages": [0.0, 0.4, 0.6, 1.0],
                "input_size": 6,
                "n_objects": 150,
                "n_dimensions": 800,
                "n_clusters": 5,
                "l_real": 8,
                "n_knowledge_draws": 3,
                "dataset_seed": 11,
                "seed": 11,
            },
            "paper": {
                "categories": ["objects", "dimensions", "both"],
                "coverages": [0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
                "input_size": 6,
                "n_objects": 150,
                "n_dimensions": 3000,
                "n_clusters": 5,
                "l_real": 30,
                "n_knowledge_draws": 10,
                "dataset_seed": 11,
                "seed": 11,
            },
        },
        plan=_plan_knowledge_input,
        execute=_execute_figure6,
        aggregate=_aggregate_figure6,
        metrics=(
            MetricSpec("coverage_gain_min", "accuracy", "higher", 0.2),
            MetricSpec("full_coverage_ari_min", "accuracy", "higher", 0.2),
            MetricSpec("partial_recovery_margin", "accuracy", "higher", 0.2),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure7_multiple_groupings",
        figure="Figure 7",
        title="Two concatenated groupings: knowledge decides which one is found",
        group="accuracy",
        scale_configs={
            "smoke": {
                "n_objects": 100,
                "n_dimensions_per_grouping": 250,
                "n_clusters": 3,
                "l_real": 6,
                "input_size": 5,
                "include_harp": False,
                "include_proclus": True,
                "n_repeats": 1,
                "dataset_seed": 12,
                "seed": 12,
            },
            "reduced": {
                "n_objects": 120,
                "n_dimensions_per_grouping": 400,
                "n_clusters": 4,
                "l_real": 8,
                "input_size": 5,
                "include_harp": True,
                "include_proclus": True,
                "n_repeats": 1,
                "dataset_seed": 12,
                "seed": 12,
            },
            "paper": {
                "n_objects": 150,
                "n_dimensions_per_grouping": 1500,
                "n_clusters": 5,
                "l_real": 30,
                "input_size": 5,
                "include_harp": True,
                "include_proclus": True,
                "n_repeats": 3,
                "dataset_seed": 12,
                "seed": 12,
            },
        },
        plan=_plan_figure7,
        execute=_execute_figure7,
        aggregate=_aggregate_figure7,
        metrics=(
            MetricSpec("guided1_margin", "accuracy", "higher", 0.2),
            MetricSpec("guided2_margin", "accuracy", "higher", 0.2),
            MetricSpec("guided1_target_ari", "info"),
            MetricSpec("guided2_target_ari", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="figure8_scalability",
        figure="Figure 8",
        title="Total runtime of repeated runs vs n and d (SSPC vs PROCLUS)",
        group="perf",
        scale_configs={
            "smoke": {
                "object_counts": [150, 300, 450],
                "dimension_counts": [40, 120, 240],
                "base_objects": 150,
                "base_dimensions": 40,
                "n_clusters": 4,
                "l_real": 4,
                "n_repeats": 1,
                "seed": 13,
            },
            "reduced": {
                "object_counts": [200, 400, 800],
                "dimension_counts": [50, 100, 200],
                "base_objects": 300,
                "base_dimensions": 50,
                "n_clusters": 5,
                "l_real": 5,
                "n_repeats": 2,
                "seed": 13,
            },
            "paper": {
                "object_counts": [1000, 2000, 4000, 8000],
                "dimension_counts": [100, 200, 400, 800],
                "base_objects": 1000,
                "base_dimensions": 100,
                "n_clusters": 5,
                "l_real": 10,
                "n_repeats": 10,
                "seed": 13,
            },
        },
        plan=_plan_figure8,
        execute=_execute_figure8,
        aggregate=_aggregate_figure8,
        metrics=(
            # Wall-clock shapes are asserted at reduced/paper scale by the
            # pytest wrapper; in CI smoke gating they stay informational
            # because shared-runner noise dominates sub-second fits.
            MetricSpec("sspc_objects_slope_positive", "timing"),
            MetricSpec("sspc_dimensions_slope_positive", "timing"),
            MetricSpec("sspc_objects_r_squared", "timing"),
            MetricSpec("sspc_dimensions_r_squared", "timing"),
            MetricSpec("sspc_vs_proclus_objects", "timing"),
            MetricSpec("sspc_vs_proclus_dimensions", "timing"),
            MetricSpec("total_seconds", "timing"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="outlier_immunity",
        figure="Section 5.2",
        title="Accuracy and outlier detection vs injected outlier fraction",
        group="robustness",
        scale_configs={
            "smoke": {
                "outlier_fractions": [0.0, 0.25],
                "n_objects": 160,
                "n_dimensions": 50,
                "n_clusters": 4,
                "l_real": 8,
                "n_repeats": 1,
                "seed": 2,
            },
            "reduced": {
                "outlier_fractions": [0.0, 0.10, 0.25],
                "n_objects": 400,
                "n_dimensions": 100,
                "n_clusters": 5,
                "l_real": 10,
                "n_repeats": 2,
                "seed": 2,
            },
            "paper": {
                "outlier_fractions": [0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
                "n_objects": 1000,
                "n_dimensions": 100,
                "n_clusters": 5,
                "l_real": 10,
                "n_repeats": 10,
                "seed": 2,
            },
        },
        plan=_plan_outliers,
        execute=_execute_outliers,
        aggregate=_aggregate_outliers,
        metrics=(
            MetricSpec("clean_ari", "accuracy", "higher", 0.15),
            MetricSpec("dirty_ari", "accuracy", "higher", 0.2),
            MetricSpec("ari_drop", "accuracy", "lower", 0.25),
            MetricSpec("dirty_outlier_recall", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="ablations",
        figure="DESIGN A1-A3",
        title="Design-choice ablations: representatives, initialisation, thresholds",
        group="robustness",
        scale_configs={
            "smoke": {
                "representative": {"n_objects": 200, "n_dimensions": 40, "n_repeats": 1,
                                   "random_state": 20},
                "initialisation": {"n_objects": 150, "n_dimensions": 80, "l_real": 5,
                                   "n_repeats": 1, "random_state": 21},
                "threshold_scheme": {"n_objects": 200, "n_dimensions": 40, "n_repeats": 1,
                                     "random_state": 22},
            },
            "reduced": {
                "representative": {"n_objects": 400, "n_dimensions": 60, "n_repeats": 2,
                                   "random_state": 20},
                "initialisation": {"n_objects": 300, "n_dimensions": 150, "l_real": 6,
                                   "n_repeats": 2, "random_state": 21},
                "threshold_scheme": {"n_objects": 400, "n_dimensions": 60, "n_repeats": 2,
                                     "random_state": 22},
            },
            "paper": {
                "representative": {"n_objects": 1000, "n_dimensions": 100, "n_repeats": 5,
                                   "random_state": 20},
                "initialisation": {"n_objects": 600, "n_dimensions": 400, "l_real": 8,
                                   "n_repeats": 5, "random_state": 21},
                "threshold_scheme": {"n_objects": 1000, "n_dimensions": 100, "n_repeats": 5,
                                     "random_state": 22},
            },
        },
        plan=_plan_ablations,
        execute=_execute_ablations,
        aggregate=_aggregate_ablations,
        metrics=(
            MetricSpec("representative_margin", "accuracy", "higher", 0.15),
            MetricSpec("initialisation_margin", "accuracy", "higher", 0.15),
            MetricSpec("threshold_min_ari", "accuracy", "higher", 0.15),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="hotpath",
        figure="perf",
        title="SSPC hot-loop micro-benchmark: fused/cached vs naive (bit-identical)",
        group="perf",
        scale_configs={
            "smoke": {
                "n_objects": 600,
                "n_dimensions": 40,
                "n_clusters": 5,
                "iterations": 2,
                "repeats": 3,
                "seed": 13,
            },
            "reduced": {
                "n_objects": 2000,
                "n_dimensions": 60,
                "n_clusters": 8,
                "iterations": 3,
                "repeats": 3,
                "seed": 13,
            },
            "paper": {
                "n_objects": 5000,
                "n_dimensions": 100,
                "n_clusters": 10,
                "iterations": 5,
                "repeats": 3,
                "seed": 13,
            },
        },
        plan=_plan_single,
        execute=_execute_hotpath,
        aggregate=_aggregate_hotpath,
        metrics=(
            MetricSpec("results_identical", "accuracy", "higher", 0.0),
            MetricSpec("stat_pass_reduction", "accuracy", "higher", 1e-6),
            # The baselines are measured serially; sharded CI runs this
            # scenario concurrently with its whole group, which swings
            # the naive arm's wall clock (and hence this ratio) several
            # fold — the tolerance absorbs that contention, the ratio
            # still catches the fused path degenerating to naive speed.
            MetricSpec("speedup", "throughput", "higher", 0.65),
            MetricSpec("naive_seconds_per_iteration", "timing"),
            MetricSpec("optimized_seconds_per_iteration", "timing"),
            MetricSpec("peak_naive_mib", "info"),
            MetricSpec("peak_optimized_mib", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="obs_overhead",
        figure="perf",
        title="Observability cost gate: <2% disabled overhead, bit-identical enabled",
        group="perf",
        scale_configs={
            "smoke": {
                "n_objects": 500,
                "n_dimensions": 24,
                "n_clusters": 4,
                "fit_iterations": 4,
                "stream_batches": 4,
                "batch_size": 100,
                "repeats": 3,
                "seed": 23,
            },
            "reduced": {
                "n_objects": 2000,
                "n_dimensions": 60,
                "n_clusters": 8,
                "fit_iterations": 8,
                "stream_batches": 8,
                "batch_size": 200,
                "repeats": 3,
                "seed": 23,
            },
            "paper": {
                "n_objects": 5000,
                "n_dimensions": 100,
                "n_clusters": 10,
                "fit_iterations": 10,
                "stream_batches": 12,
                "batch_size": 400,
                "repeats": 3,
                "seed": 23,
            },
        },
        plan=_plan_single,
        execute=_execute_obs,
        aggregate=_aggregate_obs,
        metrics=(
            # The three gates are boolean (1.0 = pass) and exact: the
            # overhead bound is computed from counted hook crossings, so
            # it is deterministic up to per-hook timing jitter that sits
            # orders of magnitude under the 2% bar.
            MetricSpec("overhead_disabled_ok", "accuracy", "higher", 0.0),
            MetricSpec("enabled_bit_identical", "accuracy", "higher", 0.0),
            MetricSpec("subsystem_coverage_ok", "accuracy", "higher", 0.0),
            MetricSpec("overhead_disabled_pct", "info"),
            MetricSpec("overhead_enabled_pct", "info"),
            MetricSpec("n_hook_calls", "info"),
            MetricSpec("per_hook_disabled_ns", "info"),
            MetricSpec("n_telemetry_requests", "info"),
            MetricSpec("per_telemetry_record_ns", "info"),
            MetricSpec("telemetry_overhead_pct", "info"),
            MetricSpec("n_subsystems", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="perf_assignment",
        figure="perf",
        title="Incremental assignment engine: dirty-fraction sweep vs full recompute",
        group="perf",
        scale_configs={
            "smoke": {
                "n_objects": 2500,
                "n_dimensions": 50,
                "n_clusters": 10,
                "rounds": 8,
                "repeats": 3,
                "block_rows": 512,
                "seed": 19,
            },
            "reduced": {
                "n_objects": 4000,
                "n_dimensions": 60,
                "n_clusters": 10,
                "rounds": 10,
                "repeats": 3,
                "block_rows": 512,
                "seed": 19,
            },
            "paper": {
                "n_objects": 10000,
                "n_dimensions": 100,
                "n_clusters": 12,
                "rounds": 12,
                "repeats": 3,
                "block_rows": 512,
                "seed": 19,
            },
        },
        plan=_plan_single,
        execute=_execute_assignment,
        aggregate=_aggregate_assignment,
        metrics=(
            MetricSpec("results_identical", "accuracy", "higher", 0.0),
            # The load-bearing gate: >=2x measured in-process, immune to
            # runner speed.  The relative ratios below carry wide
            # tolerances because the serially-measured baselines sit
            # well above what a contended CI shard observes.
            MetricSpec("near_converged_floor_ok", "accuracy", "higher", 0.0),
            MetricSpec("near_converged_speedup", "throughput", "higher", 0.75),
            MetricSpec("half_dirty_speedup", "throughput", "higher", 0.65),
            MetricSpec("full_recompute_speedup", "info"),
            MetricSpec("naive_seconds_per_round", "timing"),
            MetricSpec("engine_seconds_per_round", "timing"),
            MetricSpec("peak_broadcast_mib", "info"),
            MetricSpec("peak_blocked_mib", "info"),
            MetricSpec("blocked_memory_fraction", "info"),
            # Kernel-backend sweep: equivalence gates are bit-exact
            # booleans; the threaded floor check runs in-process with a
            # core/workload-aware bar, so the boolean gates here while
            # the ratio stays informational.
            MetricSpec("backends_bit_identical", "accuracy", "higher", 0.0),
            MetricSpec("float32_within_tolerance", "accuracy", "higher", 0.0),
            MetricSpec("threaded_floor_ok", "accuracy", "higher", 0.0),
            MetricSpec("threaded_full_speedup", "info"),
            MetricSpec("float32_max_abs_deviation", "info"),
            MetricSpec("compiled_available", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="stream",
        figure="streaming",
        title="Streaming: sustained throughput + post-drift recovery vs full-refit oracle",
        group="stream",
        scale_configs={
            "smoke": {
                "n_dimensions": 40,
                "n_clusters": 3,
                "cluster_dim": 6,
                "batch_size": 150,
                "n_batches": 30,
                "drift_batch": 10,
                "eval_batches": 6,
                "warmup": 900,
                "fit_iterations": 10,
                "oracle_window": 900,
                "oracle_refit_every": 4,
                "control_batches": 8,
                "seed": 17,
            },
            "reduced": {
                "n_dimensions": 60,
                "n_clusters": 4,
                "cluster_dim": 8,
                "batch_size": 250,
                "n_batches": 48,
                "drift_batch": 20,
                "eval_batches": 10,
                "warmup": 1500,
                "fit_iterations": 12,
                "oracle_window": 1500,
                "oracle_refit_every": 4,
                "control_batches": 10,
                "seed": 17,
            },
            "paper": {
                "n_dimensions": 100,
                "n_clusters": 6,
                "cluster_dim": 10,
                "batch_size": 500,
                "n_batches": 64,
                "drift_batch": 24,
                "eval_batches": 12,
                "warmup": 3000,
                "fit_iterations": 15,
                "oracle_window": 3000,
                "oracle_refit_every": 4,
                "control_batches": 12,
                "seed": 17,
            },
        },
        plan=_plan_single,
        execute=_execute_stream,
        aggregate=_aggregate_stream,
        metrics=(
            MetricSpec("control_bit_identical", "accuracy", "higher", 0.0),
            MetricSpec("speedup_floor_ok", "accuracy", "higher", 0.0),
            MetricSpec("post_drift_ari", "accuracy", "higher", 0.2),
            MetricSpec("recovery_gap_vs_oracle", "accuracy", "lower", 0.25),
            MetricSpec("pre_drift_ari", "accuracy", "higher", 0.15),
            # Serial baseline vs contended CI shards: observed swings of
            # ~2.5x on shared runners; the hard 10x amortized floor
            # (speedup_floor_ok) carries the absolute claim.
            MetricSpec("points_per_sec", "throughput", "higher", 0.7),
            MetricSpec("amortized_speedup_over_refit", "throughput", "higher", 0.5),
            MetricSpec("stream_seconds", "timing"),
            MetricSpec("refit_seconds", "timing"),
            MetricSpec("n_spawned", "info"),
            MetricSpec("n_drift_refreshes", "info"),
            MetricSpec("oracle_post_ari", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="serving",
        figure="perf",
        title="Serving: batched out-of-sample inference + artifact round trip",
        group="perf",
        scale_configs={
            "smoke": {
                "n_objects": 800,
                "n_dimensions": 40,
                "n_clusters": 5,
                "n_queries": 20000,
                "n_single": 400,
                "repeats": 3,
                "fit_iterations": 3,
                "seed": 13,
            },
            "reduced": {
                "n_objects": 2000,
                "n_dimensions": 60,
                "n_clusters": 8,
                "n_queries": 50000,
                "n_single": 800,
                "repeats": 3,
                "fit_iterations": 6,
                "seed": 13,
            },
            "paper": {
                "n_objects": 5000,
                "n_dimensions": 100,
                "n_clusters": 10,
                "n_queries": 200000,
                "n_single": 2000,
                "repeats": 5,
                "fit_iterations": 10,
                "seed": 13,
            },
        },
        plan=_plan_single,
        execute=_execute_serving,
        aggregate=_aggregate_serving,
        metrics=(
            MetricSpec("batch_equals_single", "accuracy", "higher", 0.0),
            MetricSpec("roundtrip_predictions_identical", "accuracy", "higher", 0.0),
            MetricSpec("throughput_floor_ok", "accuracy", "higher", 0.0),
            MetricSpec("batch_speedup_over_single", "throughput", "higher", 0.6),
            MetricSpec("batch_points_per_sec", "timing"),
            MetricSpec("artifact_roundtrip_seconds", "timing"),
            MetricSpec("predict_peak_mib", "info"),
            MetricSpec("queries_marked_outlier", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="serving_load",
        figure="perf",
        title="Serving load: micro-batched HTTP daemon vs sequential floor",
        group="serving_load",
        scale_configs={
            # d, k and the batcher knobs stay fixed at the acceptance
            # configuration across scales; only fit size, request
            # volumes and the worker count change.
            "smoke": {
                "n_objects": 800,
                "n_dimensions": 100,
                "n_clusters": 10,
                "fit_iterations": 3,
                "workers": 2,
                "max_batch": 128,
                "max_wait_us": 5000.0,
                "connections": 128,
                "warmup": 20,
                "n_sequential": 300,
                "n_capacity": 5000,
                "n_open": 3000,
                "open_utilization": 0.5,
                "min_speedup": 4.0,
                "p99_budget_ms": 300.0,
                "seed": 13,
            },
            "reduced": {
                "n_objects": 2000,
                "n_dimensions": 100,
                "n_clusters": 10,
                "fit_iterations": 6,
                "workers": 2,
                "max_batch": 128,
                "max_wait_us": 5000.0,
                "connections": 128,
                "warmup": 20,
                "n_sequential": 500,
                "n_capacity": 8000,
                "n_open": 6000,
                "open_utilization": 0.5,
                "min_speedup": 4.0,
                "p99_budget_ms": 300.0,
                "seed": 13,
            },
            "paper": {
                "n_objects": 5000,
                "n_dimensions": 100,
                "n_clusters": 10,
                "fit_iterations": 10,
                "workers": 2,
                "max_batch": 128,
                "max_wait_us": 5000.0,
                "connections": 128,
                "warmup": 50,
                "n_sequential": 1000,
                "n_capacity": 12000,
                "n_open": 8000,
                "open_utilization": 0.5,
                "min_speedup": 4.0,
                "p99_budget_ms": 300.0,
                "seed": 13,
            },
        },
        plan=_plan_single,
        execute=_execute_serving_load,
        aggregate=_aggregate_serving_load,
        metrics=(
            MetricSpec("labels_bit_identical", "accuracy", "higher", 0.0),
            MetricSpec("speedup_floor_ok", "accuracy", "higher", 0.0),
            MetricSpec("p99_within_budget", "accuracy", "higher", 0.0),
            # Client and server share one event loop, so the ratio is
            # contention-robust; absolute req/s on shared runners is
            # not, hence the wide tolerance and info/timing kinds below.
            MetricSpec("batching_speedup", "throughput", "higher", 0.6),
            MetricSpec("sequential_points_per_sec", "timing"),
            MetricSpec("batched_points_per_sec", "timing"),
            MetricSpec("p50_latency_ms", "timing"),
            MetricSpec("p99_latency_ms", "timing"),
            MetricSpec("mean_batch_size", "info"),
            MetricSpec("achieved_open_loop_pps", "info"),
        ),
    )
)

registry.register(
    Scenario(
        scenario_id="chaos",
        figure="reliability",
        title="Chaos: checkpoint recovery, corruption detection, executor faults",
        group="chaos",
        scale_configs={
            "smoke": dict(_CHAOS_SMOKE),
            "reduced": dict(_CHAOS_REDUCED),
            "paper": dict(_CHAOS_PAPER),
        },
        plan=chaos_plan,
        execute=chaos_execute,
        aggregate=chaos_aggregate,
        metrics=(
            # Every gate is a deterministic count under seeded faults, so
            # absolute match/zero tolerances are safe on any machine.
            MetricSpec("recovered_bit_identical", "accuracy", "match", 0.0),
            MetricSpec("corruption_detection_rate", "accuracy", "match", 0.0),
            MetricSpec("silent_corruptions", "accuracy", "lower", 0.0),
            MetricSpec("executor_fault_tolerant", "accuracy", "match", 0.0),
            MetricSpec("n_faults_injected", "info"),
        ),
    )
)
