"""Micro-benchmark of the SSPC per-iteration hot loop.

Times one full iteration of the main loop (Listing 2, steps 3-6:
assignment + ``SelectDim`` + ``phi`` + representative replacement) in
two configurations that produce **bit-identical** results:

* **naive** — the seed implementation's behaviour: per-cluster
  assignment-gain passes, a second full gain pass for the forced
  assignment, and a fresh statistics pass in each of ``SelectDim``, the
  ``phi`` evaluation and the median replacement (statistics cache
  disabled via ``max_entries=0``).
* **optimized** — the shared-workspace path: one fused broadcasted gain
  pass reused by the forced assignment, and one cached statistics pass
  per member set shared by all three consumers.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full (n=5000, d=100, k=10)
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # quick CI smoke run

Reports the per-iteration timings, the measured speedup and the
statistics-pass counts of both arms (``--output`` writes them as JSON;
the committed baselines live in ``BENCH_smoke.json`` /
``BENCH_reduced.json`` through the ``repro-bench`` gate).  The script
exits non-zero if the two arms ever disagree on labels, selected
dimensions or ``phi`` — the benchmark doubles as an equivalence check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from typing import List, Tuple

import numpy as np

from repro.core.assignment import ClusterState, compute_gains_matrix, members_from_labels
from repro.core.dimension_selection import select_dimensions
from repro.core.model import OUTLIER_LABEL
from repro.core.objective import ObjectiveFunction
from repro.core.representatives import compute_phi_scores, replace_representatives
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import make_threshold
from repro.data.generator import SyntheticDataGenerator


def build_dataset(n_objects: int, n_dimensions: int, n_clusters: int, seed: int):
    """Synthetic projected-cluster dataset matching the paper's model."""
    return SyntheticDataGenerator(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=max(n_dimensions // 10, 3),
        outlier_fraction=0.05,
        random_state=seed,
    ).generate(seed)


def initial_states(objective: ObjectiveFunction, truth_labels: np.ndarray, n_clusters: int,
                   seed: int) -> List[ClusterState]:
    """Plausible mid-optimisation states: noisy medoids + estimated dims."""
    rng = np.random.default_rng(seed)
    states: List[ClusterState] = []
    prior = max(objective.n_objects // n_clusters, 2)
    for cluster in range(n_clusters):
        members = np.flatnonzero(truth_labels == cluster)
        if members.size == 0:
            members = np.arange(objective.n_objects)
        # A partial member sample keeps the dimension estimates imperfect,
        # as they are in real iterations.
        sample = rng.choice(members, size=max(members.size // 2, 2), replace=False)
        sample = np.sort(sample)
        dims = select_dimensions(objective, sample)
        if dims.size == 0:
            dims = np.arange(objective.n_dimensions)
        medoid = int(rng.choice(members))
        states.append(
            ClusterState(
                representative=objective.data[medoid].copy(),
                dimensions=dims,
                members=np.empty(0, dtype=int),
                size_hint=prior,
            )
        )
    return states


def labels_from_gains(gains: np.ndarray) -> np.ndarray:
    """The assignment tail shared by both arms (argmax + outlier rule)."""
    n_objects = gains.shape[0]
    labels = np.full(n_objects, OUTLIER_LABEL, dtype=int)
    best_cluster = np.argmax(gains, axis=1)
    best_gain = gains[np.arange(n_objects), best_cluster]
    positive = best_gain > 0.0
    labels[positive] = best_cluster[positive]
    return labels


def run_iterations(
    objective: ObjectiveFunction,
    states: List[ClusterState],
    n_iterations: int,
    *,
    optimized: bool,
) -> Tuple[float, list]:
    """Drive ``n_iterations`` of the hot loop; return (seconds, trace)."""
    states = [state.copy() for state in states]
    trace = []
    start = time.perf_counter()
    for _ in range(n_iterations):
        if optimized:
            gains = compute_gains_matrix(objective, states, fused=True)
            labels = labels_from_gains(gains)
            # Forced assignment reuses the gain matrix.
            outliers = np.flatnonzero(labels == OUTLIER_LABEL)
            if outliers.size:
                labels[outliers] = np.argmax(gains[outliers], axis=1)
        else:
            gains = compute_gains_matrix(objective, states, fused=False)
            labels = labels_from_gains(gains)
            # Seed behaviour: the forced assignment recomputes every
            # cluster's gains from scratch.
            outliers = np.flatnonzero(labels == OUTLIER_LABEL)
            if outliers.size:
                redone = np.full((outliers.size, len(states)), -np.inf)
                for index, state in enumerate(states):
                    if state.dimensions.size == 0:
                        continue
                    redone[:, index] = objective.assignment_gains(
                        state.representative, state.dimensions, max(state.size_hint, 2)
                    )[outliers]
                labels[outliers] = np.argmax(redone, axis=1)

        members = members_from_labels(labels, len(states))
        for state, cluster_members in zip(states, members):
            state.members = cluster_members
        for state in states:
            state.dimensions = select_dimensions(objective, state.members)
        phi_scores, overall = compute_phi_scores(objective, states)
        trace.append(
            (
                labels.copy(),
                [state.dimensions.copy() for state in states],
                float(overall),
            )
        )
        # Median replacement for every cluster (deterministic; the bad-
        # cluster medoid draw is outside the timed hot path).
        states = replace_representatives(objective, states, bad_cluster=-1,
                                         new_medoid=None, new_medoid_dimensions=None)
    return time.perf_counter() - start, trace


def traces_identical(first: list, second: list) -> bool:
    """Whether two iteration traces match bit for bit."""
    if len(first) != len(second):
        return False
    for (labels_a, dims_a, phi_a), (labels_b, dims_b, phi_b) in zip(first, second):
        if not np.array_equal(labels_a, labels_b):
            return False
        if len(dims_a) != len(dims_b):
            return False
        for a, b in zip(dims_a, dims_b):
            if not np.array_equal(a, b):
                return False
        if phi_a != phi_b:
            return False
    return True


def run_benchmark(args: argparse.Namespace) -> dict:
    dataset = build_dataset(args.n_objects, args.n_dimensions, args.n_clusters, args.seed)
    data = dataset.data

    # Separate evaluators so the naive arm cannot benefit from the cache.
    threshold_naive = make_threshold(m=0.5)
    naive_cache = ClusterStatsCache(data, max_entries=0)
    objective_naive = ObjectiveFunction(data, threshold_naive, stats_cache=naive_cache)

    threshold_fast = make_threshold(m=0.5)
    fast_cache = ClusterStatsCache(data)
    objective_fast = ObjectiveFunction(data, threshold_fast, stats_cache=fast_cache)

    states = initial_states(objective_fast, dataset.labels, args.n_clusters, args.seed)

    naive_times, fast_times = [], []
    identical = True
    for _ in range(args.repeats):
        fast_cache.clear()
        naive_cache.clear()
        naive_seconds, naive_trace = run_iterations(
            objective_naive, states, args.iterations, optimized=False
        )
        fast_seconds, fast_trace = run_iterations(
            objective_fast, states, args.iterations, optimized=True
        )
        identical = identical and traces_identical(naive_trace, fast_trace)
        naive_times.append(naive_seconds)
        fast_times.append(fast_seconds)

    naive_per_iter = min(naive_times) / args.iterations
    fast_per_iter = min(fast_times) / args.iterations
    # Snapshot the statistics-pass counters before the memory probe
    # below adds its own (untimed, uncounted) iterations.
    stat_passes_naive = naive_cache.n_stat_passes
    stat_passes_fast = fast_cache.n_stat_passes

    # Peak-memory probe (tracemalloc, reported info-only): one untimed
    # iteration per arm, after the timed runs so instrumentation
    # overhead never touches the timings.
    tracemalloc.start()
    run_iterations(objective_naive, states, 1, optimized=False)
    _, peak_naive = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    run_iterations(objective_fast, states, 1, optimized=True)
    _, peak_fast = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "config": {
            "n_objects": args.n_objects,
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "iterations": args.iterations,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "naive_seconds_per_iteration": naive_per_iter,
        "optimized_seconds_per_iteration": fast_per_iter,
        "speedup": naive_per_iter / fast_per_iter if fast_per_iter > 0 else float("inf"),
        "stat_passes_naive_last_repeat": stat_passes_naive,
        "stat_passes_optimized_last_repeat": stat_passes_fast,
        "stat_pass_reduction": (
            stat_passes_naive / max(stat_passes_fast, 1)
        ),
        "peak_naive_mib": peak_naive / (1024.0 ** 2),
        "peak_optimized_mib": peak_fast / (1024.0 ** 2),
        "results_identical": bool(identical),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-objects", type=int, default=5000)
    parser.add_argument("--n-dimensions", type=int, default=100)
    parser.add_argument("--n-clusters", type=int, default=10)
    parser.add_argument("--iterations", type=int, default=5,
                        help="hot-loop iterations per timed run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per arm; the best run is reported")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only; "
                             "committed baselines live in BENCH_smoke.json / "
                             "BENCH_reduced.json via repro-bench)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when the speedup falls below this")
    args = parser.parse_args(argv)
    for name in ("n_objects", "n_dimensions", "n_clusters", "iterations", "repeats"):
        if getattr(args, name) < 1:
            parser.error("--%s must be at least 1" % name.replace("_", "-"))
    if args.smoke:
        args.n_objects = min(args.n_objects, 800)
        args.n_dimensions = min(args.n_dimensions, 40)
        args.n_clusters = min(args.n_clusters, 5)
        args.iterations = min(args.iterations, 3)
        # repeats stay as requested: best-of-N damps scheduler noise on
        # shared CI runners, and each smoke repeat costs well under a
        # second.

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("SSPC hot-path micro-benchmark (n=%d, d=%d, k=%d)" % (
        args.n_objects, args.n_dimensions, args.n_clusters))
    print("  naive     : %.4f s/iteration (%d statistics passes)" % (
        report["naive_seconds_per_iteration"], report["stat_passes_naive_last_repeat"]))
    print("  optimized : %.4f s/iteration (%d statistics passes)" % (
        report["optimized_seconds_per_iteration"],
        report["stat_passes_optimized_last_repeat"]))
    print("  speedup   : %.2fx   stat-pass reduction: %.2fx" % (
        report["speedup"], report["stat_pass_reduction"]))
    print("  peak mem  : naive %.2f MiB, optimized %.2f MiB (per iteration)" % (
        report["peak_naive_mib"], report["peak_optimized_mib"]))
    print("  results identical: %s" % report["results_identical"])
    if args.output:
        print("  report written to %s" % args.output)

    if not report["results_identical"]:
        print("ERROR: naive and optimized paths diverged", file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print("ERROR: speedup %.2fx below required %.2fx" % (
            report["speedup"], args.min_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
