"""Micro-benchmark of the incremental assignment engine.

Measures the ``(n, k)`` gain-matrix cost of the
:class:`~repro.core.assignment_engine.AssignmentEngine` against the
stateless reference kernel
(:func:`~repro.core.objective.grouped_assignment_gains`) under a
**dirty-fraction sweep**: each round mutates a controlled fraction of
the clusters (the center perturbation a median replacement produces)
and re-evaluates the matrix.  The reference arm re-stacks the cluster
lists and recomputes all ``k`` columns every round — the engine patches
the mutated plan rows and recomputes only the dirty columns.

The sweep's regimes map onto the system's real phases:

* ``dirty = 1.0`` — early training iterations / a fresh index: every
  column changes, the engine can only win by plan reuse and workspace
  reuse;
* ``dirty = 0.5`` — mid-training churn;
* ``dirty <= 0.1`` — near-converged training iterations and
  steady-state streaming, where memberships have stabilised and only
  the occasional bad-cluster replacement (or drift refresh) touches a
  column.  The acceptance bar lives here: the engine must be at least
  **2x** faster than full recomputation.

The sweep runs once per kernel backend (reference / threaded /
compiled / float32, see :mod:`repro.core.backends`; unavailable
backends are skipped loudly with an obs event and a CI annotation) and
gates the tentpole claim: the threaded backend must beat the reference
backend on a full recompute by a core- and workload-aware floor (2x on
>= 4 cores — the CI runner class — once rounds are long enough to
amortize pool dispatch; sub-2ms rounds and smaller hosts degrade the
floor honestly instead of gating on measurement constants).

The benchmark doubles as an equivalence check — every round asserts the
engine's cached matrix equals a from-scratch reference call bit for bit
for float64 backends and within the declared tolerance band for float32
(the script exits non-zero otherwise) — and reports a peak-memory probe
(:mod:`tracemalloc`): one full-recompute pass through the engine's
blocked workspaces next to one reference pass that materializes the
whole ``(n, g, c)`` broadcast.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_perf_assignment.py           # reduced scale
    PYTHONPATH=src python benchmarks/bench_perf_assignment.py --smoke   # quick CI smoke run

``--output`` writes the JSON report (the committed baselines live in
``BENCH_smoke.json`` / ``BENCH_reduced.json`` through the
``repro-bench`` gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from typing import Dict, List, Tuple

import numpy as np

from repro import obs
from repro.core.assignment_engine import AssignmentEngine
from repro.core.backends import BACKEND_NAMES, available_backends
from repro.core.dimension_selection import select_dimensions
from repro.core.objective import ObjectiveFunction, grouped_assignment_gains
from repro.core.thresholds import make_threshold
from repro.data.generator import SyntheticDataGenerator

#: Swept fractions of clusters mutated per round, largest first.  The
#: last entry is the near-converged regime the acceptance bar gates.
DIRTY_FRACTIONS = (1.0, 0.5, 0.1)

#: Hard floor on the near-converged (<=10% dirty) speedup.
NEAR_CONVERGED_MIN_SPEEDUP = 2.0

#: Hard floor on the threaded backend's full-recompute speedup over the
#: reference backend — the tentpole gate — *where the host and the
#: workload can physically express it*.  Thread scaling is bounded by
#: the core count, and sub-millisecond rounds measure pool-dispatch
#: constants rather than kernel throughput, so the effective floor
#: degrades honestly (see :func:`effective_threaded_floor`) instead of
#: flaking on hardware or scales that cannot show the win.  GitHub's
#: ubuntu runners have 4 vCPUs, so multi-core CI always enforces a
#: threads-must-win floor, and the full 2x bar engages at paper scale.
THREADED_MIN_FULL_SPEEDUP = 2.0

#: Below this reference full-recompute round time the measurement is
#: dominated by per-call dispatch constants, not kernel throughput.
AMORTIZED_MIN_REFERENCE_SECONDS = 2e-3


def _visible_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def effective_threaded_floor(cores: int, reference_full_seconds: float) -> float:
    """The threaded-vs-reference floor this host/workload can be held to."""
    amortized = reference_full_seconds >= AMORTIZED_MIN_REFERENCE_SECONDS
    if cores < 2:
        # Single core: threads cannot beat the inline loop; just require
        # the dispatch + verify-backstop overhead to stay bounded.  On
        # sub-2ms rounds that constant overhead is a large fraction of
        # the round, so the bound loosens further.
        return 0.75 if amortized else 0.6
    if cores < 4 or not amortized:
        # Few cores, or rounds too short to amortize pool dispatch:
        # threads must still win, but 2x is not physically available.
        return 1.2
    return THREADED_MIN_FULL_SPEEDUP


def build_cluster_specs(
    args: argparse.Namespace,
) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
    """A realistic plan: ground-truth members, SelectDim dims, median centers."""
    dataset = SyntheticDataGenerator(
        n_objects=args.n_objects,
        n_dimensions=args.n_dimensions,
        n_clusters=args.n_clusters,
        avg_cluster_dimensionality=max(args.n_dimensions // 10, 3),
        outlier_fraction=0.05,
        random_state=args.seed,
    ).generate(args.seed)
    data = dataset.data
    objective = ObjectiveFunction(data, make_threshold(m=0.5))
    dims, centers, thresholds = [], [], []
    for cluster in range(args.n_clusters):
        members = np.flatnonzero(dataset.labels == cluster)
        if members.size < 2:
            members = np.arange(data.shape[0])
        selected = select_dimensions(objective, members)
        if selected.size == 0:
            selected = np.arange(min(3, args.n_dimensions))
        dims.append(selected.astype(int))
        centers.append(np.median(data[members][:, selected], axis=0))
        thresholds.append(
            np.asarray(objective.threshold.values(max(members.size, 2))[selected])
        )
    return data, dims, centers, thresholds


def _mutate(
    rng: np.random.Generator,
    centers: List[np.ndarray],
    cluster: int,
) -> None:
    """The mutation a median replacement produces: a small center drift."""
    if centers[cluster].size:
        centers[cluster] = centers[cluster] + rng.normal(
            scale=1e-4, size=centers[cluster].shape
        )


def _sweep_point(
    data: np.ndarray,
    dims: List[np.ndarray],
    centers: List[np.ndarray],
    thresholds: List[np.ndarray],
    *,
    fraction: float,
    rounds: int,
    repeats: int,
    block_rows: int,
    seed: int,
    backend: str = "reference",
) -> dict:
    """Best (minimum) per-round seconds for the (reference, engine) arms.

    Every round is homogeneous — the same number of clusters goes dirty
    — so the minimum over all rounds and repeats is the clean
    measurement of the regime; it filters the descheduling blips a
    sharded CI runner injects into summed timings (which would otherwise
    swamp the engine arm's very short intervals).

    The engine arm runs on ``backend``; every round is diffed against a
    from-scratch reference call — bitwise for float64 backends, with
    the maximum absolute/relative deviation tracked for float32.
    """
    k = len(dims)
    n_dirty = max(1, int(round(fraction * k)))
    identical = True
    max_abs_dev = max_rel_dev = 0.0
    best_naive, best_engine = float("inf"), float("inf")
    bit_identical = True
    for repeat in range(repeats):
        rng = np.random.default_rng([seed, repeat])
        centers_run = [center.copy() for center in centers]
        engine = AssignmentEngine(data, block_rows=block_rows, backend=backend)
        bit_identical = bool(getattr(engine.backend, "bit_identical", False))
        engine.set_clusters(dims, centers_run, thresholds)
        engine.gains()  # warm: the sweep times steady-state rounds only
        for round_index in range(rounds):
            for position in range(n_dirty):
                cluster = (round_index * n_dirty + position) % k
                _mutate(rng, centers_run, cluster)
                engine.update_cluster(
                    cluster, dims[cluster], centers_run[cluster], thresholds[cluster]
                )
            start = time.perf_counter()
            engine_gains = engine.gains()
            best_engine = min(best_engine, time.perf_counter() - start)
            start = time.perf_counter()
            naive_gains = grouped_assignment_gains(data, dims, centers_run, thresholds)
            best_naive = min(best_naive, time.perf_counter() - start)
            if bit_identical:
                identical = identical and np.array_equal(engine_gains, naive_gains)
            else:
                finite = np.isfinite(naive_gains)
                deviation = np.abs(engine_gains[finite] - naive_gains[finite])
                max_abs_dev = max(max_abs_dev, float(deviation.max(initial=0.0)))
                scale = np.maximum(np.abs(naive_gains[finite]), 1.0)
                max_rel_dev = max(
                    max_rel_dev, float((deviation / scale).max(initial=0.0))
                )
                identical = identical and bool(
                    np.allclose(
                        engine_gains[finite], naive_gains[finite],
                        rtol=engine.backend.rtol, atol=engine.backend.atol,
                    )
                )
    return {
        "naive_seconds_per_round": best_naive,
        "engine_seconds_per_round": best_engine,
        "speedup": best_naive / best_engine if best_engine > 0 else float("inf"),
        "within_contract": bool(identical),
        "bit_identical_contract": bit_identical,
        "max_abs_deviation": max_abs_dev,
        "max_rel_deviation": max_rel_dev,
    }


def _peak_memory_mib(
    data: np.ndarray,
    dims: List[np.ndarray],
    centers: List[np.ndarray],
    thresholds: List[np.ndarray],
    block_rows: int,
) -> Tuple[float, float]:
    """Tracemalloc peaks of one full pass: reference broadcast vs blocked engine."""
    tracemalloc.start()
    grouped_assignment_gains(data, dims, centers, thresholds)
    _, peak_broadcast = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    engine = AssignmentEngine(data, block_rows=block_rows)
    engine.set_clusters(dims, centers, thresholds)
    tracemalloc.start()
    engine.gains()  # all columns dirty: a full blocked recomputation
    _, peak_blocked = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak_broadcast / (1024.0 ** 2), peak_blocked / (1024.0 ** 2)


def run_benchmark(args: argparse.Namespace) -> dict:
    data, dims, centers, thresholds = build_cluster_specs(args)

    availability = available_backends()
    backend_sweep: Dict[str, dict] = {}
    skipped_backends: Dict[str, str] = {}
    backends_bit_identical = True
    float32_within_tolerance = True
    float32_max_abs = float32_max_rel = 0.0
    for backend in BACKEND_NAMES:
        available, detail = availability[backend]
        if not available:
            # Loud skip, never silent: the obs event lands in traces
            # and the CI annotation in the job summary.
            skipped_backends[backend] = detail
            obs.event("backend_skipped", backend=backend, reason=detail)
            if os.environ.get("GITHUB_ACTIONS"):
                print("::warning title=perf_assignment::backend %r skipped: %s"
                      % (backend, detail))
            continue
        points = {}
        for fraction in DIRTY_FRACTIONS:
            point = _sweep_point(
                data, dims, centers, thresholds,
                fraction=fraction,
                rounds=args.rounds,
                repeats=args.repeats,
                block_rows=args.block_rows,
                seed=args.seed,
                backend=backend,
            )
            points["%g" % fraction] = point
            if point["bit_identical_contract"]:
                backends_bit_identical = backends_bit_identical and point["within_contract"]
            else:
                float32_within_tolerance = (
                    float32_within_tolerance and point["within_contract"]
                )
                float32_max_abs = max(float32_max_abs, point["max_abs_deviation"])
                float32_max_rel = max(float32_max_rel, point["max_rel_deviation"])
        backend_sweep[backend] = {"detail": detail, "sweep": points}

    # The tentpole gate: threaded vs reference on a full recompute,
    # held to a floor the host's core count and the workload's round
    # time can physically express.
    cores = _visible_cores()
    reference_full = backend_sweep["reference"]["sweep"]["1"]["engine_seconds_per_round"]
    threaded_full = backend_sweep["threaded"]["sweep"]["1"]["engine_seconds_per_round"]
    threaded_floor = effective_threaded_floor(cores, reference_full)
    threaded_full_speedup = (
        reference_full / threaded_full if threaded_full > 0 else float("inf")
    )
    if threaded_floor < THREADED_MIN_FULL_SPEEDUP:
        obs.event(
            "threaded_floor_degraded",
            cores=cores,
            floor=threaded_floor,
            reference_round_ms=reference_full * 1e3,
        )
        if os.environ.get("GITHUB_ACTIONS"):
            print("::warning title=perf_assignment::threaded floor degraded to "
                  "%.2fx (%d core(s), %.2fms reference rounds)"
                  % (threaded_floor, cores, reference_full * 1e3))

    sweep = backend_sweep["reference"]["sweep"]
    identical = all(point["within_contract"] for point in sweep.values())

    peak_broadcast_mib, peak_blocked_mib = _peak_memory_mib(
        data, dims, centers, thresholds, args.block_rows
    )
    near = sweep["%g" % DIRTY_FRACTIONS[-1]]
    full = sweep["%g" % DIRTY_FRACTIONS[0]]
    return {
        "config": {
            "n_objects": args.n_objects,
            "n_dimensions": args.n_dimensions,
            "n_clusters": args.n_clusters,
            "rounds": args.rounds,
            "repeats": args.repeats,
            "block_rows": args.block_rows,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "dirty_fractions": list(DIRTY_FRACTIONS),
        "sweep": sweep,
        "backend_sweep": backend_sweep,
        "skipped_backends": skipped_backends,
        "results_identical": bool(identical),
        "near_converged_speedup": near["speedup"],
        "near_converged_floor_ok": bool(
            near["speedup"] >= NEAR_CONVERGED_MIN_SPEEDUP
        ),
        "half_dirty_speedup": sweep["0.5"]["speedup"],
        "full_recompute_speedup": full["speedup"],
        "naive_seconds_per_round": near["naive_seconds_per_round"],
        "engine_seconds_per_round": near["engine_seconds_per_round"],
        "backends_bit_identical": bool(backends_bit_identical),
        "float32_within_tolerance": bool(float32_within_tolerance),
        "float32_max_abs_deviation": float32_max_abs,
        "float32_max_rel_deviation": float32_max_rel,
        "compiled_available": bool(availability["compiled"][0]),
        "threaded_cores": cores,
        "threaded_floor_effective": threaded_floor,
        "threaded_full_speedup": threaded_full_speedup,
        "threaded_floor_ok": bool(threaded_full_speedup >= threaded_floor),
        "peak_broadcast_mib": peak_broadcast_mib,
        "peak_blocked_mib": peak_blocked_mib,
        "blocked_memory_fraction": (
            peak_blocked_mib / peak_broadcast_mib if peak_broadcast_mib > 0 else float("nan")
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-objects", type=int, default=4000)
    parser.add_argument("--n-dimensions", type=int, default=60)
    parser.add_argument("--n-clusters", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=10,
                        help="mutation/evaluation rounds per timed run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per sweep point; the best run is reported")
    parser.add_argument("--block-rows", type=int, default=512,
                        help="row-block bound of the engine's evaluation loop")
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: print only; "
                             "committed baselines live in BENCH_smoke.json / "
                             "BENCH_reduced.json via repro-bench)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when the near-converged speedup "
                             "falls below this")
    args = parser.parse_args(argv)
    for name in ("n_objects", "n_dimensions", "n_clusters", "rounds", "repeats",
                 "block_rows"):
        if getattr(args, name) < 1:
            parser.error("--%s must be at least 1" % name.replace("_", "-"))
    if args.smoke:
        args.n_objects = min(args.n_objects, 1500)
        args.n_dimensions = min(args.n_dimensions, 40)
        args.n_clusters = min(args.n_clusters, 8)
        args.rounds = min(args.rounds, 8)

    report = run_benchmark(args)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)

    print("assignment-engine micro-benchmark (n=%d, d=%d, k=%d, block=%d)" % (
        args.n_objects, args.n_dimensions, args.n_clusters, args.block_rows))
    for backend, entry in report["backend_sweep"].items():
        print("  backend %-9s (%s)" % (backend, entry["detail"]))
        for fraction in report["dirty_fractions"]:
            point = entry["sweep"]["%g" % fraction]
            print("    dirty %4.0f%% : naive %.3f ms  engine %.3f ms  speedup %.2fx" % (
                fraction * 100,
                point["naive_seconds_per_round"] * 1e3,
                point["engine_seconds_per_round"] * 1e3,
                point["speedup"]))
    for backend, reason in report["skipped_backends"].items():
        print("  backend %-9s SKIPPED: %s" % (backend, reason))
    print("  threaded vs reference (full recompute): %.2fx on %d core(s), floor %.2fx" % (
        report["threaded_full_speedup"], report["threaded_cores"],
        report["threaded_floor_effective"]))
    print("  peak memory : broadcast %.2f MiB  blocked %.2f MiB (%.0f%%)" % (
        report["peak_broadcast_mib"], report["peak_blocked_mib"],
        report["blocked_memory_fraction"] * 100))
    print("  results identical: %s  (float64 backends: %s, float32 in band: %s)" % (
        report["results_identical"], report["backends_bit_identical"],
        report["float32_within_tolerance"]))
    if args.output:
        print("  report written to %s" % args.output)

    if not report["results_identical"] or not report["backends_bit_identical"]:
        print("ERROR: a float64 backend diverged from the reference kernel",
              file=sys.stderr)
        return 1
    if not report["float32_within_tolerance"]:
        print("ERROR: float32 backend exceeded its declared tolerance "
              "(max abs %.3g, max rel %.3g)" % (
                  report["float32_max_abs_deviation"],
                  report["float32_max_rel_deviation"]), file=sys.stderr)
        return 1
    if not report["threaded_floor_ok"]:
        print("ERROR: threaded backend full-recompute speedup %.2fx below the "
              "%.2fx floor for %d core(s)" % (
                  report["threaded_full_speedup"],
                  report["threaded_floor_effective"],
                  report["threaded_cores"]), file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["near_converged_speedup"] < args.min_speedup:
        print("ERROR: near-converged speedup %.2fx below required %.2fx" % (
            report["near_converged_speedup"], args.min_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
