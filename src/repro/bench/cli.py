"""``repro-bench`` — the benchmark orchestration command line.

Subcommands
-----------
``list``
    Show every registered scenario with its group, figure and task count.
``run``
    Execute a suite (``--suite smoke|reduced|paper``) with ``--workers``
    process shards into a resumable ``--run-dir``; re-running the same
    command resumes from the stored records.
``compare``
    Gate a run against a committed baseline (``BENCH_smoke.json`` ...):
    exits non-zero on any regression beyond the declared tolerances.
``report``
    Print (and optionally write as markdown) the per-figure tables of a
    completed run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.bench import registry
from repro.bench.compare import baseline_from_summary, compare_run, load_baseline
from repro.bench.config import SCALES, resolve_scale
from repro.bench.report import format_run, write_tables
from repro.bench.runner import run_suite
from repro.bench.store import RunStore


def _add_selection_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--group",
        default=None,
        help="restrict to one scenario group (see 'repro-bench list')",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        default=None,
        metavar="ID",
        help="restrict to specific scenario ids (repeatable)",
    )


def _cmd_list(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.suite)
    scenarios = registry.select(scenario_ids=args.scenarios, group=args.group)
    print("%-28s %-12s %-14s %6s  %s" % ("scenario", "group", "figure", "tasks", "title"))
    for scenario in scenarios:
        print(
            "%-28s %-12s %-14s %6d  %s"
            % (
                scenario.scenario_id,
                scenario.group,
                scenario.figure,
                len(scenario.build_tasks(scale)),
                scenario.title,
            )
        )
    print("\n%d scenarios, groups: %s (task counts at scale %r)" % (
        len(scenarios), ", ".join(registry.groups()), scale))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.suite)
    with obs.trace_session(args.trace, args.metrics_out, log=print):
        report = run_suite(
            scale=scale,
            run_dir=args.run_dir,
            workers=args.workers,
            group=args.group,
            scenario_ids=args.scenarios,
            resume=not args.no_resume,
            profile=args.profile,
            task_timeout=args.task_timeout,
            task_retries=args.task_retries,
            log=print,
        )
    store = RunStore(args.run_dir)
    summary = store.load_summary() or {}
    print()
    print(format_run(summary))
    print()
    print(
        "run complete: %d tasks (%d cached, %d executed), %d failure(s)"
        % (report.n_tasks, report.n_cached, report.n_executed, len(report.failures))
    )
    if args.write_baseline:
        baseline = baseline_from_summary(summary)
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline written to %s" % args.write_baseline)
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    store = RunStore(args.run_dir)
    summary = store.load_summary()
    if summary is None:
        print("error: no summary.json in %s (run 'repro-bench run' first)" % args.run_dir,
              file=sys.stderr)
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    report = compare_run(
        summary,
        baseline,
        group=args.group,
        scenario_ids=args.scenarios,
        exact=args.exact,
    )
    print(report.format())
    gated = [v for v in report.verdicts if v.kind in ("accuracy", "throughput")]
    print(
        "\ncompared %d metrics (%d gated): %d regression(s), %d error(s)"
        % (len(report.verdicts), len(gated), len(report.failures), len(report.errors))
    )
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    store = RunStore(args.run_dir)
    summary = store.load_summary()
    if summary is None:
        print("error: no summary.json in %s" % args.run_dir, file=sys.stderr)
        return 2
    print(format_run(summary))
    if args.output:
        written = write_tables(summary, args.output)
        print("\nwrote %d table files to %s" % (len(written), args.output))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Parallel, resumable orchestration of the paper's benchmark suite.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--suite", default=None, choices=SCALES,
                             help="scale used to count tasks (default: $REPRO_BENCH_SCALE)")
    _add_selection_arguments(list_parser)
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="execute a suite into a resumable run dir")
    run_parser.add_argument("--suite", default=None, choices=SCALES,
                            help="suite scale (default: $REPRO_BENCH_SCALE, then 'reduced')")
    run_parser.add_argument("--run-dir", default="runs/latest", type=Path,
                            help="resumable result store (default: runs/latest)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="process shards for task fan-out (default: 1)")
    run_parser.add_argument("--no-resume", action="store_true",
                            help="ignore existing records and re-execute everything")
    run_parser.add_argument("--profile", action="store_true",
                            help="run each executed task under cProfile and write a "
                                 "top-25-cumulative table per task into "
                                 "<run-dir>/profiles/ (off by default: profiling "
                                 "inflates the recorded timings)")
    run_parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                            help="kill and retry any task running longer than this "
                                 "(workers > 1 only; default: no deadline)")
    run_parser.add_argument("--task-retries", type=int, default=1, metavar="N",
                            help="retry a crashed/timed-out task up to N times before "
                                 "reporting it failed (default: 1)")
    run_parser.add_argument("--write-baseline", metavar="PATH", default=None,
                            help="also write the aggregated metrics as a baseline file")
    run_parser.add_argument("--trace", metavar="PATH", default=None, type=Path,
                            help="record spans for the whole run and write a Chrome "
                                 "trace-event JSON there (load in ui.perfetto.dev)")
    run_parser.add_argument("--metrics-out", metavar="PATH", default=None, type=Path,
                            help="write a checksummed metrics snapshot (counters, "
                                 "histograms, events) for the run")
    _add_selection_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="gate a run against a committed baseline"
    )
    compare_parser.add_argument("--run-dir", default="runs/latest", type=Path)
    compare_parser.add_argument("--baseline", required=True,
                                help="baseline JSON (BENCH_smoke.json, or another run's summary.json)")
    compare_parser.add_argument("--exact", action="store_true",
                                help="require identical gated metrics (shard-equality checks)")
    _add_selection_arguments(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    report_parser = subparsers.add_parser("report", help="print per-figure tables of a run")
    report_parser.add_argument("--run-dir", default="runs/latest", type=Path)
    report_parser.add_argument("--output", default=None,
                               help="also write one markdown table per figure into this directory")
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("\ninterrupted — completed task records were persisted; rerun to resume",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
