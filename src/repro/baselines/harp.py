"""HARP: hierarchical projected clustering with automatic relevance thresholds.

Yip, Cheung & Ng (TKDE 2004); re-created here from the description in
Section 2.1 of the SSPC paper.  The core assumption is that two objects
(or small clusters) are likely to belong to the same real cluster if they
are very similar along many dimensions.  HARP therefore performs
agglomerative merging gated by two thresholds:

* a minimum per-dimension *relevance* a merged cluster must reach on a
  dimension for the dimension to count as selected, and
* a minimum *number of selected dimensions* a merge must produce.

The thresholds start harsh (only merges that are almost certainly correct
are allowed) and are progressively loosened over a fixed number of
threshold levels until either the target number of clusters is reached or
the thresholds hit their baseline.

Relevance of dimension ``j`` to cluster ``C``: ``1 - s^2_Cj / s^2_j``
(local variance relative to global variance; 1 means perfectly tight,
0 means no better than the global spread, negative means worse).  This is
the natural relevance index for the paper's data model and mirrors the
variance-ratio view used by SSPC's ``m`` threshold scheme.

The implementation keeps the merge search tractable by only evaluating,
for every cluster, its nearest neighbours in the subspace of its
currently selected dimensions — full pairwise evaluation at every level
would be quadratic in ``n`` with a large constant, which is the
"intrinsically slow" behaviour the SSPC paper notes; the neighbour list
keeps runtime manageable while preserving the algorithm's behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import ClusteringResult, ProjectedCluster
from repro.core.stats_cache import ClusterStatsCache
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


class _HarpCluster:
    """Internal bookkeeping for one HARP cluster (members + running stats)."""

    __slots__ = ("members", "sums", "sum_squares")

    def __init__(self, members: List[int], data: np.ndarray) -> None:
        self.members = list(members)
        block = data[self.members]
        self.sums = block.sum(axis=0)
        self.sum_squares = (block ** 2).sum(axis=0)

    @property
    def size(self) -> int:
        return len(self.members)

    def variance(self) -> np.ndarray:
        """Per-dimension sample variance of the cluster (0 for singletons)."""
        n = self.size
        if n < 2:
            return np.zeros_like(self.sums)
        mean = self.sums / n
        return np.maximum((self.sum_squares - n * mean ** 2) / (n - 1), 0.0)

    def mean(self) -> np.ndarray:
        return self.sums / self.size

    def merged_with(self, other: "_HarpCluster", data: np.ndarray) -> "_HarpCluster":
        merged = _HarpCluster.__new__(_HarpCluster)
        merged.members = self.members + other.members
        merged.sums = self.sums + other.sums
        merged.sum_squares = self.sum_squares + other.sum_squares
        return merged


class HARP:
    """Hierarchical projected clustering with dynamic thresholds.

    Parameters
    ----------
    n_clusters:
        Target number of clusters.
    n_threshold_levels:
        Number of loosening steps from the harshest thresholds to the
        baseline (the original algorithm's dynamic threshold schedule).
    max_relevance:
        Relevance threshold at the harshest level (close to 1).
    min_relevance:
        Baseline relevance threshold reached at the loosest level.  The
        default (0.5) keeps the gate meaningful: a dimension only counts
        as selected when the merged cluster's variance along it is at
        most half the global variance.
    min_selected_fraction:
        Baseline fraction of dimensions that must be selected for a merge
        to be allowed at the loosest level (the harshest level requires
        all dimensions).
    n_neighbors:
        Number of nearest neighbours evaluated as merge partners per
        cluster and level.
    stats_cache:
        Optional shared :class:`~repro.core.stats_cache.ClusterStatsCache`
        workspace.  When experiments run several algorithms on the same
        dataset, passing one workspace lets HARP reuse the global
        column-statistics pass (and leaves its per-cluster statistics
        available to other consumers) instead of recomputing it.
    random_state:
        Seed or generator (used only for tie-breaking the merge order).

    Attributes
    ----------
    labels_, dimensions_, result_ :
        Outputs after :meth:`fit`.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_threshold_levels: int = 10,
        max_relevance: float = 0.9,
        min_relevance: float = 0.5,
        min_selected_fraction: float = 0.01,
        n_neighbors: int = 10,
        stats_cache: Optional["ClusterStatsCache"] = None,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        self.n_threshold_levels = check_positive_int(
            n_threshold_levels, name="n_threshold_levels", minimum=1
        )
        if not (0.0 <= min_relevance <= max_relevance <= 1.0):
            raise ValueError("need 0 <= min_relevance <= max_relevance <= 1")
        self.max_relevance = float(max_relevance)
        self.min_relevance = float(min_relevance)
        if not (0.0 < min_selected_fraction <= 1.0):
            raise ValueError("min_selected_fraction must be in (0, 1]")
        self.min_selected_fraction = float(min_selected_fraction)
        self.n_neighbors = check_positive_int(n_neighbors, name="n_neighbors", minimum=1)
        self.stats_cache = stats_cache
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.dimensions_: Optional[List[np.ndarray]] = None
        self.result_: Optional[ClusteringResult] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "HARP":
        """Cluster ``data`` by threshold-gated agglomerative merging."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)
        n_objects, n_dimensions = data.shape

        # Reuse (or establish) the shared statistics workspace for the
        # global column variances — identical values to a direct pass.
        if self.stats_cache is None or self.stats_cache.data is not data:
            self.stats_cache = ClusterStatsCache(data)
        global_variance = np.maximum(
            self.stats_cache.global_variance, np.finfo(float).tiny
        )
        clusters: Dict[int, _HarpCluster] = {
            index: _HarpCluster([index], data) for index in range(n_objects)
        }

        for level in range(self.n_threshold_levels):
            if len(clusters) <= self.n_clusters:
                break
            relevance_threshold, min_selected = self._thresholds_at(level, n_dimensions)
            self._merge_pass(
                data, clusters, global_variance, relevance_threshold, min_selected, rng
            )

        # If merging stalled above the target k, force-merge the closest
        # remaining clusters (full-space centroid distance) so the output has
        # exactly k clusters, mirroring the "target number of clusters" stop.
        self._force_merge_to_k(data, clusters)

        labels = np.full(n_objects, -1, dtype=int)
        dimensions: List[np.ndarray] = []
        cluster_items = sorted(clusters.items(), key=lambda item: -item[1].size)[: self.n_clusters]
        for new_label, (_, cluster) in enumerate(cluster_items):
            labels[cluster.members] = new_label
            relevance = 1.0 - cluster.variance() / global_variance
            selected = np.flatnonzero(relevance >= max(self.min_relevance, 0.5))
            if selected.size == 0:
                selected = np.argsort(-relevance)[: max(2, n_dimensions // 10)]
            dimensions.append(np.sort(selected))

        self.labels_ = labels
        self.dimensions_ = dimensions
        clusters_out = [
            ProjectedCluster(members=np.flatnonzero(labels == index), dimensions=dimensions[index])
            for index in range(len(dimensions))
        ]
        self.result_ = ClusteringResult(
            clusters=clusters_out,
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            objective=float("nan"),
            algorithm="HARP",
            parameters=self.get_params(),
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "n_threshold_levels": self.n_threshold_levels,
            "max_relevance": self.max_relevance,
            "min_relevance": self.min_relevance,
            "min_selected_fraction": self.min_selected_fraction,
            "n_neighbors": self.n_neighbors,
        }

    # ------------------------------------------------------------------ #
    def _thresholds_at(self, level: int, n_dimensions: int) -> Tuple[float, int]:
        """Relevance / selected-count thresholds at one loosening level."""
        if self.n_threshold_levels == 1:
            fraction = 1.0
        else:
            fraction = level / (self.n_threshold_levels - 1)
        relevance = self.max_relevance - fraction * (self.max_relevance - self.min_relevance)
        max_selected = n_dimensions
        min_selected_baseline = max(int(np.ceil(self.min_selected_fraction * n_dimensions)), 1)
        min_selected = int(round(max_selected - fraction * (max_selected - min_selected_baseline)))
        return relevance, max(min_selected, 1)

    def _merge_pass(
        self,
        data: np.ndarray,
        clusters: Dict[int, _HarpCluster],
        global_variance: np.ndarray,
        relevance_threshold: float,
        min_selected: int,
        rng: np.random.Generator,
    ) -> None:
        """One pass of allowed merges at the current threshold level."""
        merged_away: set = set()
        cluster_ids = list(clusters.keys())
        rng.shuffle(cluster_ids)
        centroids = {cid: clusters[cid].mean() for cid in cluster_ids}
        relevances = {
            cid: np.maximum(1.0 - clusters[cid].variance() / global_variance, 0.0)
            for cid in cluster_ids
        }

        for cid in cluster_ids:
            if cid in merged_away or len(clusters) <= self.n_clusters:
                continue
            cluster = clusters[cid]
            candidates = self._nearest_neighbours(
                cid, clusters, centroids, merged_away, relevances.get(cid)
            )
            best_partner = None
            best_selected = -1
            for other_id in candidates:
                if other_id in merged_away or other_id == cid:
                    continue
                merged = cluster.merged_with(clusters[other_id], data)
                if merged.size < 2:
                    continue
                relevance = 1.0 - merged.variance() / global_variance
                n_selected = int(np.count_nonzero(relevance >= relevance_threshold))
                if n_selected >= min_selected and n_selected > best_selected:
                    best_partner = other_id
                    best_selected = n_selected
            if best_partner is not None:
                clusters[cid] = cluster.merged_with(clusters[best_partner], data)
                centroids[cid] = clusters[cid].mean()
                relevances[cid] = np.maximum(
                    1.0 - clusters[cid].variance() / global_variance, 0.0
                )
                del clusters[best_partner]
                merged_away.add(best_partner)

    def _nearest_neighbours(
        self,
        cid: int,
        clusters: Dict[int, _HarpCluster],
        centroids: Dict[int, np.ndarray],
        merged_away: set,
        relevance_weights: Optional[np.ndarray] = None,
    ) -> List[int]:
        """IDs of the closest other clusters by (relevance-weighted) centroid distance.

        Clusters that already exhibit structure weight the distance by their
        per-dimension relevance, so merge partners are sought in the
        cluster's own (emerging) relevant subspace instead of the full
        space — a singleton has no such structure yet and falls back to the
        unweighted distance.
        """
        others = [other for other in clusters if other != cid and other not in merged_away]
        if not others:
            return []
        base = centroids[cid]
        if relevance_weights is not None and clusters[cid].size >= 2 and relevance_weights.sum() > 0:
            weights = relevance_weights
        else:
            weights = np.ones_like(base)
        distances = np.asarray(
            [(weights * (centroids[other] - base) ** 2).sum() for other in others]
        )
        order = np.argsort(distances)[: self.n_neighbors]
        return [others[int(position)] for position in order]

    def _force_merge_to_k(self, data: np.ndarray, clusters: Dict[int, _HarpCluster]) -> None:
        """Merge closest centroid pairs until only ``n_clusters`` remain."""
        while len(clusters) > self.n_clusters:
            ids = list(clusters.keys())
            centroids = np.asarray([clusters[cid].mean() for cid in ids])
            distances = ((centroids[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            np.fill_diagonal(distances, np.inf)
            flat = int(np.argmin(distances))
            first, second = divmod(flat, len(ids))
            keep_id, drop_id = ids[first], ids[second]
            clusters[keep_id] = clusters[keep_id].merged_with(clusters[drop_id], data)
            del clusters[drop_id]
