"""k-medoids (PAM-style) substrate.

The medoid-based family (k-medoids, CLARANS, PROCLUS, SSPC itself) shares
the idea of representing each cluster by an actual object.  This module
provides a straightforward PAM-style alternating optimisation used as a
sanity baseline and as shared machinery for the tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.model import ClusteringResult
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


class KMedoids:
    """Alternating k-medoids (assign to nearest medoid, re-pick best medoid).

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    max_iterations:
        Maximum number of alternate-and-update iterations.
    n_init:
        Number of independent restarts; the lowest-cost run is kept.
    dimensions:
        Optional subset of dimensions used for all distance computations
        (lets tests exercise "projected" behaviour with a fixed subspace).
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_, medoid_indices_, cost_, result_ :
        Outputs after :meth:`fit`.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iterations: int = 50,
        n_init: int = 4,
        dimensions: Optional[Sequence[int]] = None,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        self.max_iterations = check_positive_int(max_iterations, name="max_iterations", minimum=1)
        self.n_init = check_positive_int(n_init, name="n_init", minimum=1)
        self.dimensions = None if dimensions is None else np.asarray(dimensions, dtype=int)
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cost_: float = float("inf")
        self.result_: Optional[ClusteringResult] = None
        self.n_iterations_: int = 0

    def fit(self, data) -> "KMedoids":
        """Cluster ``data`` by alternating assignment and medoid update."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)
        working = data if self.dimensions is None else data[:, self.dimensions]

        best_labels = None
        best_medoids = None
        best_cost = float("inf")
        best_iterations = 0
        for _ in range(self.n_init):
            labels, medoids, cost, iterations = self._single_run(working, rng)
            if cost < best_cost:
                best_labels, best_medoids, best_cost = labels, medoids, cost
                best_iterations = iterations

        assert best_labels is not None and best_medoids is not None
        self.labels_ = best_labels
        self.medoid_indices_ = np.asarray(best_medoids, dtype=int)
        self.cost_ = float(best_cost)
        self.n_iterations_ = int(best_iterations)
        self.result_ = ClusteringResult.from_labels(
            best_labels,
            data.shape[1],
            objective=-float(best_cost),
            algorithm="KMedoids",
            parameters=self.get_params(),
            n_clusters=self.n_clusters,
        )
        return self

    def _single_run(self, working: np.ndarray, rng: np.random.Generator):
        """One restart: random medoids, then alternate assign / update."""
        n_objects = working.shape[0]
        medoids = rng.choice(n_objects, size=self.n_clusters, replace=False)
        labels = np.zeros(n_objects, dtype=int)
        cost = float("inf")
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = self._distances_to(working, medoids)
            labels = np.argmin(distances, axis=1)
            new_cost = float(distances[np.arange(n_objects), labels].sum())
            new_medoids = medoids.copy()
            for cluster in range(self.n_clusters):
                members = np.flatnonzero(labels == cluster)
                if members.size == 0:
                    new_medoids[cluster] = int(rng.integers(n_objects))
                    continue
                block = working[members]
                within = ((block[:, None, :] - block[None, :, :]) ** 2).sum(axis=2)
                new_medoids[cluster] = int(members[int(np.argmin(within.sum(axis=1)))])
            if np.array_equal(np.sort(new_medoids), np.sort(medoids)) or new_cost >= cost:
                cost = min(cost, new_cost)
                break
            medoids, cost = new_medoids, new_cost
        return labels, medoids, cost, iterations

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "max_iterations": self.max_iterations,
            "n_init": self.n_init,
            "dimensions": None if self.dimensions is None else [int(j) for j in self.dimensions],
        }

    @staticmethod
    def _distances_to(data: np.ndarray, medoids: np.ndarray) -> np.ndarray:
        return ((data[:, None, :] - data[medoids][None, :, :]) ** 2).sum(axis=2)
