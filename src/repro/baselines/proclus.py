"""PROCLUS: PROjected CLUStering (Aggarwal et al., SIGMOD 1999).

PROCLUS is the partitional projected clustering baseline of the paper's
evaluation.  It follows the k-medoids framework in three phases:

* **Initialisation** — a sample of well-scattered points is chosen
  greedily (farthest-point heuristic) as the candidate medoid pool.
* **Iterative phase** — ``k`` medoids are drawn from the pool; for each
  medoid its *locality* (the objects within its nearest-other-medoid
  radius, measured with all dimensions) determines the dimensions with
  the smallest average distance to the medoid, and ``k * l`` dimensions
  are allocated across clusters (at least two per cluster) by picking the
  smallest standardised deviations; objects are then assigned to the
  nearest medoid using per-cluster Manhattan segmental distances; the
  medoid of the worst (smallest) cluster is replaced to escape bad
  choices.
* **Refinement** — dimensions are recomputed once from the final
  clusters instead of the localities, objects are re-assigned, and
  objects farther from their medoid than the cluster's sphere of
  influence are marked as outliers.

The user parameter ``l`` (average number of relevant dimensions per
cluster) plays the central role the paper criticises: results degrade
when it is far from the true cluster dimensionality (Figure 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.model import ClusteringResult, ProjectedCluster
from repro.core.stats_cache import ClusterStatsCache
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


class PROCLUS:
    """Projected clustering with per-cluster dimension selection.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    avg_dimensions:
        The user parameter ``l`` — average number of selected dimensions
        per cluster (must be at least 2 in the original algorithm; values
        below 2 are clamped).
    sample_factor:
        Size of the candidate medoid pool, as a multiple of ``k``
        (the original paper uses A*k with A around 30 bounded by n).
    medoid_pool_factor:
        Size of the greedy pool from which the ``k`` working medoids are
        drawn (B*k with B a small constant).
    max_iterations:
        Maximum number of bad-medoid replacement iterations.
    outlier_fraction_radius:
        Multiplier on the sphere-of-influence radius used in the
        refinement phase to flag outliers; ``None`` disables outlier
        detection (every object stays assigned).
    stats_cache:
        Optional shared :class:`~repro.core.stats_cache.ClusterStatsCache`
        workspace.  The iterative phase evaluates the cost of recurring
        member sets; the workspace memoizes their per-cluster means (via
        the lightweight :meth:`~repro.core.stats_cache.ClusterStatsCache.mean`
        path) so repeated evaluations and co-running algorithms share
        one statistics engine.
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_, medoid_indices_, dimensions_, result_ :
        Outputs after :meth:`fit`; ``dimensions_`` is the list of
        per-cluster selected dimension arrays.
    """

    def __init__(
        self,
        n_clusters: int,
        avg_dimensions: float,
        *,
        sample_factor: int = 30,
        medoid_pool_factor: int = 3,
        max_iterations: int = 20,
        outlier_fraction_radius: Optional[float] = 1.0,
        stats_cache: Optional["ClusterStatsCache"] = None,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        if avg_dimensions < 1:
            raise ValueError("avg_dimensions must be at least 1")
        self.avg_dimensions = float(avg_dimensions)
        self.sample_factor = check_positive_int(sample_factor, name="sample_factor", minimum=1)
        self.medoid_pool_factor = check_positive_int(
            medoid_pool_factor, name="medoid_pool_factor", minimum=1
        )
        self.max_iterations = check_positive_int(max_iterations, name="max_iterations", minimum=1)
        if outlier_fraction_radius is not None and outlier_fraction_radius <= 0:
            raise ValueError("outlier_fraction_radius must be positive or None")
        self.outlier_fraction_radius = outlier_fraction_radius
        self.stats_cache = stats_cache
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.medoid_indices_: Optional[np.ndarray] = None
        self.dimensions_: Optional[List[np.ndarray]] = None
        self.result_: Optional[ClusteringResult] = None
        self.objective_: float = float("inf")

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def fit(self, data) -> "PROCLUS":
        """Cluster ``data`` with the three PROCLUS phases."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)
        n_objects, n_dimensions = data.shape
        if self.stats_cache is None or self.stats_cache.data is not data:
            self.stats_cache = ClusterStatsCache(data)

        total_dimensions = int(round(self.avg_dimensions * self.n_clusters))
        total_dimensions = max(total_dimensions, 2 * self.n_clusters)
        total_dimensions = min(total_dimensions, n_dimensions * self.n_clusters)

        candidate_pool = self._greedy_sample(data, rng)

        # Iterative phase: current medoid set + bad medoid replacement.
        pool = list(candidate_pool)
        rng.shuffle(pool)
        current = np.asarray(pool[: self.n_clusters], dtype=int)
        spare = [index for index in pool if index not in set(current.tolist())]

        best_cost = float("inf")
        best_medoids = current.copy()
        best_labels = np.zeros(n_objects, dtype=int)

        for _ in range(self.max_iterations):
            dimensions = self._find_dimensions(data, current, total_dimensions)
            labels = self._assign(data, current, dimensions)
            cost = self._evaluate(data, current, dimensions, labels)
            if cost < best_cost:
                best_cost = cost
                best_medoids = current.copy()
                best_labels = labels
            # Replace the medoid of the smallest cluster with a spare candidate.
            if not spare:
                break
            sizes = np.bincount(best_labels, minlength=self.n_clusters)
            bad = int(np.argmin(sizes))
            current = best_medoids.copy()
            replacement = spare.pop(int(rng.integers(len(spare))))
            current[bad] = replacement

        # Refinement phase: recompute dimensions from the clusters themselves.
        refined_dimensions = self._refine_dimensions(data, best_labels, best_medoids, total_dimensions)
        refined_labels = self._assign(data, best_medoids, refined_dimensions)
        refined_labels = self._mark_outliers(data, best_medoids, refined_dimensions, refined_labels)
        final_cost = self._evaluate(data, best_medoids, refined_dimensions, refined_labels)

        self.labels_ = refined_labels
        self.medoid_indices_ = best_medoids
        self.dimensions_ = refined_dimensions
        self.objective_ = float(final_cost)
        clusters = [
            ProjectedCluster(
                members=np.flatnonzero(refined_labels == index),
                dimensions=refined_dimensions[index],
                representative=data[best_medoids[index]],
            )
            for index in range(self.n_clusters)
        ]
        self.result_ = ClusteringResult(
            clusters=clusters,
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            objective=-float(final_cost),
            algorithm="PROCLUS",
            parameters=self.get_params(),
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "avg_dimensions": self.avg_dimensions,
            "sample_factor": self.sample_factor,
            "medoid_pool_factor": self.medoid_pool_factor,
            "max_iterations": self.max_iterations,
            "outlier_fraction_radius": self.outlier_fraction_radius,
        }

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    def _greedy_sample(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Farthest-point greedy selection of the candidate medoid pool."""
        n_objects = data.shape[0]
        sample_size = min(self.sample_factor * self.n_clusters, n_objects)
        sample = rng.choice(n_objects, size=sample_size, replace=False)
        pool_size = min(self.medoid_pool_factor * self.n_clusters, sample_size)

        chosen = [int(sample[rng.integers(sample_size)])]
        distances = np.sqrt(((data[sample] - data[chosen[0]]) ** 2).sum(axis=1))
        while len(chosen) < pool_size:
            farthest = int(sample[int(np.argmax(distances))])
            if farthest in chosen:
                remaining = [index for index in sample if index not in chosen]
                if not remaining:
                    break
                farthest = int(remaining[int(rng.integers(len(remaining)))])
            chosen.append(farthest)
            new_distances = np.sqrt(((data[sample] - data[farthest]) ** 2).sum(axis=1))
            distances = np.minimum(distances, new_distances)
        return np.asarray(chosen, dtype=int)

    def _find_dimensions(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        total_dimensions: int,
    ) -> List[np.ndarray]:
        """Locality-based dimension selection for the current medoids.

        For each medoid, its locality is the set of objects within
        ``delta_i`` (the distance to the nearest other medoid, using all
        dimensions).  The per-dimension average distance of the locality
        to the medoid is standardised within each cluster, and the
        ``total_dimensions`` smallest standardised values are picked
        greedily subject to a minimum of two dimensions per cluster.
        """
        n_dimensions = data.shape[1]
        medoid_points = data[medoids]
        medoid_distances = np.sqrt(
            ((medoid_points[:, None, :] - medoid_points[None, :, :]) ** 2).sum(axis=2)
        )
        np.fill_diagonal(medoid_distances, np.inf)
        nearest_other = medoid_distances.min(axis=1)

        average_distance = np.zeros((self.n_clusters, n_dimensions))
        for index, medoid in enumerate(medoids):
            all_distances = np.sqrt(((data - data[medoid]) ** 2).sum(axis=1))
            locality = np.flatnonzero(all_distances <= nearest_other[index])
            locality = locality[locality != medoid]
            if locality.size == 0:
                order = np.argsort(all_distances)
                locality = order[1 : max(2, data.shape[0] // (10 * self.n_clusters)) + 1]
            average_distance[index] = np.abs(data[locality] - data[medoid]).mean(axis=0)

        row_mean = average_distance.mean(axis=1, keepdims=True)
        row_std = average_distance.std(axis=1, ddof=1, keepdims=True)
        row_std = np.where(row_std > 0, row_std, 1.0)
        z_scores = (average_distance - row_mean) / row_std

        selected: List[List[int]] = [[] for _ in range(self.n_clusters)]
        # Two smallest z-scores per cluster first (the PROCLUS constraint).
        for index in range(self.n_clusters):
            order = np.argsort(z_scores[index])
            selected[index].extend(int(j) for j in order[:2])
        remaining = total_dimensions - 2 * self.n_clusters
        if remaining > 0:
            flat = [
                (z_scores[i, j], i, j)
                for i in range(self.n_clusters)
                for j in range(n_dimensions)
                if j not in selected[i]
            ]
            flat.sort()
            for _, i, j in flat[:remaining]:
                selected[i].append(int(j))
        return [np.asarray(sorted(dims), dtype=int) for dims in selected]

    def _assign(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        dimensions: List[np.ndarray],
    ) -> np.ndarray:
        """Assign every object to the medoid with the smallest segmental distance."""
        n_objects = data.shape[0]
        distances = np.empty((n_objects, self.n_clusters))
        for index, medoid in enumerate(medoids):
            dims = dimensions[index]
            if dims.size == 0:
                distances[:, index] = np.inf
                continue
            distances[:, index] = np.abs(data[:, dims] - data[medoid, dims]).mean(axis=1)
        return np.argmin(distances, axis=1)

    def _evaluate(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        dimensions: List[np.ndarray],
        labels: np.ndarray,
    ) -> float:
        """The PROCLUS objective: average within-cluster segmental dispersion."""
        total = 0.0
        count = 0
        for index in range(self.n_clusters):
            members = np.flatnonzero(labels == index)
            dims = dimensions[index]
            if members.size == 0 or dims.size == 0:
                continue
            # Per-cluster means come from the shared statistics workspace;
            # slicing the full-dimension mean is bit-identical to the mean
            # of the sliced block, so the cost value is unchanged.
            centroid = self.stats_cache.mean(members)[dims]
            total += np.abs(data[np.ix_(members, dims)] - centroid).mean(axis=1).sum()
            count += members.size
        return total / count if count else float("inf")

    def _refine_dimensions(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        medoids: np.ndarray,
        total_dimensions: int,
    ) -> List[np.ndarray]:
        """Refinement-phase dimension selection using the clusters themselves."""
        n_dimensions = data.shape[1]
        average_distance = np.zeros((self.n_clusters, n_dimensions))
        for index, medoid in enumerate(medoids):
            members = np.flatnonzero(labels == index)
            if members.size == 0:
                members = np.asarray([medoid])
            average_distance[index] = np.abs(data[members] - data[medoid]).mean(axis=0)
        row_mean = average_distance.mean(axis=1, keepdims=True)
        row_std = average_distance.std(axis=1, ddof=1, keepdims=True)
        row_std = np.where(row_std > 0, row_std, 1.0)
        z_scores = (average_distance - row_mean) / row_std

        selected: List[List[int]] = [[] for _ in range(self.n_clusters)]
        for index in range(self.n_clusters):
            order = np.argsort(z_scores[index])
            selected[index].extend(int(j) for j in order[:2])
        remaining = total_dimensions - 2 * self.n_clusters
        if remaining > 0:
            flat = [
                (z_scores[i, j], i, j)
                for i in range(self.n_clusters)
                for j in range(n_dimensions)
                if j not in selected[i]
            ]
            flat.sort()
            for _, i, j in flat[:remaining]:
                selected[i].append(int(j))
        return [np.asarray(sorted(dims), dtype=int) for dims in selected]

    def _mark_outliers(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        dimensions: List[np.ndarray],
        labels: np.ndarray,
    ) -> np.ndarray:
        """Flag objects outside every medoid's sphere of influence as outliers."""
        if self.outlier_fraction_radius is None:
            return labels
        labels = labels.copy()
        medoid_points = data[medoids]
        # Sphere of influence of medoid i: its segmental distance to the
        # nearest other medoid, measured in its own subspace.
        radii = np.full(self.n_clusters, np.inf)
        for index in range(self.n_clusters):
            dims = dimensions[index]
            if dims.size == 0:
                continue
            others = [j for j in range(self.n_clusters) if j != index]
            if not others:
                continue
            distances = np.abs(medoid_points[others][:, dims] - medoid_points[index, dims]).mean(axis=1)
            radii[index] = distances.min() * self.outlier_fraction_radius
        for obj in range(data.shape[0]):
            inside_any = False
            for index in range(self.n_clusters):
                dims = dimensions[index]
                if dims.size == 0 or not np.isfinite(radii[index]):
                    inside_any = True
                    break
                distance = np.abs(data[obj, dims] - medoid_points[index, dims]).mean()
                if distance <= radii[index]:
                    inside_any = True
                    break
            if not inside_any:
                labels[obj] = -1
        return labels
