"""Plain k-means (Lloyd's algorithm) — substrate and sanity baseline.

The paper's problem definition (Section 3) notes that the k-means
objective (total within-cluster squared error) corresponds to the maximum
likelihood hypothesis of the data model when there are no irrelevant
dimensions.  The implementation below is used as a sanity baseline in
tests and as the refinement substrate of other methods; it follows the
standard Lloyd iteration with k-means++-style seeding.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import ClusteringResult
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


class KMeans:
    """Lloyd's k-means with k-means++ initialisation.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    max_iterations:
        Maximum number of Lloyd iterations.
    tolerance:
        Relative decrease of the within-cluster squared error below which
        the iteration stops.
    n_init:
        Number of independent restarts; the best (lowest inertia) run is
        kept.
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_:
        Cluster assignment of every object.
    centers_:
        ``(k, d)`` array of cluster centroids.
    inertia_:
        Total within-cluster squared error of the best run.
    result_:
        :class:`~repro.core.model.ClusteringResult` view of the output.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        n_init: int = 5,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        self.max_iterations = check_positive_int(max_iterations, name="max_iterations", minimum=1)
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = float(tolerance)
        self.n_init = check_positive_int(n_init, name="n_init", minimum=1)
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")
        self.result_: Optional[ClusteringResult] = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "KMeans":
        """Cluster ``data`` and store labels, centers and inertia."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)

        best_labels: Optional[np.ndarray] = None
        best_centers: Optional[np.ndarray] = None
        best_inertia = float("inf")
        best_iterations = 0
        for _ in range(self.n_init):
            labels, centers, inertia, iterations = self._single_run(data, rng)
            if inertia < best_inertia:
                best_labels, best_centers, best_inertia = labels, centers, inertia
                best_iterations = iterations

        assert best_labels is not None and best_centers is not None
        self.labels_ = best_labels
        self.centers_ = best_centers
        self.inertia_ = float(best_inertia)
        self.n_iterations_ = int(best_iterations)
        self.result_ = ClusteringResult.from_labels(
            best_labels,
            data.shape[1],
            objective=-float(best_inertia),
            algorithm="KMeans",
            parameters=self.get_params(),
            n_clusters=self.n_clusters,
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "max_iterations": self.max_iterations,
            "tolerance": self.tolerance,
            "n_init": self.n_init,
        }

    # ------------------------------------------------------------------ #
    def _single_run(self, data: np.ndarray, rng: np.random.Generator):
        centers = self._kmeans_plus_plus(data, rng)
        previous_inertia = float("inf")
        labels = np.zeros(data.shape[0], dtype=int)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = self._squared_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            inertia = float(distances[np.arange(data.shape[0]), labels].sum())
            for cluster in range(self.n_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the point farthest from its center.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    centers[cluster] = data[farthest]
            if previous_inertia - inertia <= self.tolerance * max(previous_inertia, 1.0):
                previous_inertia = inertia
                break
            previous_inertia = inertia
        return labels, centers, previous_inertia, iterations

    def _kmeans_plus_plus(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n_objects = data.shape[0]
        centers = np.empty((self.n_clusters, data.shape[1]))
        first = int(rng.integers(n_objects))
        centers[0] = data[first]
        closest = ((data - centers[0]) ** 2).sum(axis=1)
        for index in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                choice = int(rng.integers(n_objects))
            else:
                choice = int(rng.choice(n_objects, p=closest / total))
            centers[index] = data[choice]
            closest = np.minimum(closest, ((data - centers[index]) ** 2).sum(axis=1))
        return centers

    @staticmethod
    def _squared_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        return ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
