"""Baseline clustering algorithms used in the paper's comparison.

Everything here is implemented from scratch on top of numpy:

* :class:`PROCLUS` — the partitional projected clustering algorithm of
  Aggarwal et al. (SIGMOD 1999), the paper's main projected baseline.
* :class:`HARP` — the hierarchical projected clustering algorithm of
  Yip et al. (TKDE 2004), re-created from the description in Section 2.1.
* :class:`CLARANS` — the randomized k-medoids algorithm of Ng & Han
  (VLDB 1994), the paper's non-projected reference.
* :class:`DOC` / :class:`FastDOC` — the Monte-Carlo projected clustering
  algorithm of Procopiuc et al. (SIGMOD 2002), discussed in related work
  and implemented for completeness / ablations.
* :class:`KMeans` and :class:`KMedoids` — classic substrates shared by
  the above and usable as sanity baselines.

All estimators follow the same ``fit`` / ``labels_`` / ``result_``
interface as :class:`repro.SSPC`, so the experiment harness treats them
interchangeably.
"""

from repro.baselines.kmeans import KMeans
from repro.baselines.kmedoids import KMedoids
from repro.baselines.clarans import CLARANS
from repro.baselines.proclus import PROCLUS
from repro.baselines.harp import HARP
from repro.baselines.doc import DOC, FastDOC

__all__ = [
    "KMeans",
    "KMedoids",
    "CLARANS",
    "PROCLUS",
    "HARP",
    "DOC",
    "FastDOC",
]
