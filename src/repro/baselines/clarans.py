"""CLARANS: Clustering Large Applications based on RANdomized Search.

Ng & Han (VLDB 1994).  CLARANS is a k-medoids method that explores the
graph whose nodes are sets of ``k`` medoids and whose neighbours differ
in exactly one medoid.  From a random node it examines up to
``max_neighbors`` random neighbours, moving whenever a neighbour has a
lower total cost, and declares a local optimum after ``max_neighbors``
consecutive non-improving examinations; the search restarts ``num_local``
times and keeps the best local optimum.

The paper uses CLARANS (with all dimensions in the distance function) as
the non-projected reference algorithm in the raw-accuracy experiment
(Figure 3); every object is assigned to its nearest medoid and there is
no outlier list.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import ClusteringResult
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


class CLARANS:
    """Randomized-search k-medoids (Ng & Han, 1994).

    Parameters
    ----------
    n_clusters:
        Number of medoids ``k``.
    num_local:
        Number of local optima to collect (restarts).
    max_neighbors:
        Number of random neighbours examined before a node is declared a
        local optimum.  Ng & Han recommend ``max(250, 1.25% of k(n-k))``;
        the default uses that rule capped for practicality on large
        datasets.
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_, medoid_indices_, cost_, result_ :
        Outputs after :meth:`fit`.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        num_local: int = 2,
        max_neighbors: Optional[int] = None,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        self.num_local = check_positive_int(num_local, name="num_local", minimum=1)
        if max_neighbors is not None:
            max_neighbors = check_positive_int(max_neighbors, name="max_neighbors", minimum=1)
        self.max_neighbors = max_neighbors
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cost_: float = float("inf")
        self.result_: Optional[ClusteringResult] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "CLARANS":
        """Cluster ``data`` with randomized medoid search."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)
        n_objects = data.shape[0]

        max_neighbors = self.max_neighbors
        if max_neighbors is None:
            graph_degree = self.n_clusters * (n_objects - self.n_clusters)
            max_neighbors = int(min(max(250, 0.0125 * graph_degree), 1000))

        best_medoids: Optional[np.ndarray] = None
        best_cost = float("inf")
        for _ in range(self.num_local):
            medoids = rng.choice(n_objects, size=self.n_clusters, replace=False)
            cost = self._total_cost(data, medoids)
            examined = 0
            while examined < max_neighbors:
                candidate = medoids.copy()
                swap_position = int(rng.integers(self.n_clusters))
                replacement = int(rng.integers(n_objects))
                if replacement in candidate:
                    examined += 1
                    continue
                candidate[swap_position] = replacement
                candidate_cost = self._total_cost(data, candidate)
                if candidate_cost < cost:
                    medoids, cost = candidate, candidate_cost
                    examined = 0
                else:
                    examined += 1
            if cost < best_cost:
                best_medoids, best_cost = medoids, cost

        assert best_medoids is not None
        distances = self._distances_to(data, best_medoids)
        labels = np.argmin(distances, axis=1)

        self.labels_ = labels
        self.medoid_indices_ = np.asarray(best_medoids, dtype=int)
        self.cost_ = float(best_cost)
        self.result_ = ClusteringResult.from_labels(
            labels,
            data.shape[1],
            objective=-float(best_cost),
            algorithm="CLARANS",
            parameters=self.get_params(),
            n_clusters=self.n_clusters,
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "num_local": self.num_local,
            "max_neighbors": self.max_neighbors,
        }

    # ------------------------------------------------------------------ #
    @staticmethod
    def _distances_to(data: np.ndarray, medoids: np.ndarray) -> np.ndarray:
        return np.sqrt(((data[:, None, :] - data[medoids][None, :, :]) ** 2).sum(axis=2))

    @classmethod
    def _total_cost(cls, data: np.ndarray, medoids: np.ndarray) -> float:
        distances = cls._distances_to(data, medoids)
        return float(distances.min(axis=1).sum())
