"""DOC / FastDOC: Monte-Carlo projected clustering (Procopiuc et al., SIGMOD 2002).

DOC discovers projected clusters one at a time.  To find one cluster it
repeatedly samples a *seed* object and a small *discriminating set* of
other objects; a dimension is considered relevant when every object of
the discriminating set lies within ``w`` of the seed along that
dimension.  The cluster candidate is then the set of all objects inside
the resulting hyper-box of width ``2w`` around the seed, and candidates
are ranked by the quality function ``mu(|C|, |D|) = |C| * (1/beta)^|D|``
which trades the number of member objects against the number of relevant
dimensions via the user parameter ``beta``.  The best candidate over all
trials is reported, its objects are removed, and the procedure repeats
for the next cluster.

FastDOC is the heuristic variant that caps the number of inner trials and
keeps only the candidate with the most relevant dimensions, which is much
faster at a small cost in quality.

The SSPC paper discusses DOC in Section 2.1 as a method that performs
well only when clusters really are hyper-cubes of the assumed width; it
is implemented here for completeness and for the ablation benches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import ClusteringResult, ProjectedCluster
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    check_array_2d,
    check_cluster_count,
    check_fraction,
    check_positive_int,
)


class DOC:
    """Density-based Optimal projected Clustering (Monte-Carlo).

    Parameters
    ----------
    n_clusters:
        Number of clusters to extract (one at a time).
    width:
        Half-width ``w`` of the hyper-box along each relevant dimension.
        When ``None`` it defaults to 15% of the average global value
        range, a practical choice for the paper's synthetic data model.
    beta:
        Trade-off parameter in ``(0, 0.5]``: smaller values favour more
        relevant dimensions over more objects.
    n_outer_trials:
        Number of seed objects tried per cluster.
    n_inner_trials:
        Number of discriminating sets tried per seed.
    discriminating_set_size:
        Number of objects in each discriminating set.
    min_cluster_fraction:
        Candidates holding fewer than this fraction of the remaining
        objects are ignored (the ``alpha`` parameter of the original
        algorithm).
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_, dimensions_, result_ :
        Outputs after :meth:`fit`; objects in no discovered cluster get
        the outlier label ``-1``.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        width: Optional[float] = None,
        beta: float = 0.25,
        n_outer_trials: int = 10,
        n_inner_trials: int = 20,
        discriminating_set_size: int = 5,
        min_cluster_fraction: float = 0.05,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        if width is not None and width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.beta = check_fraction(beta, name="beta", inclusive_low=False)
        self.n_outer_trials = check_positive_int(n_outer_trials, name="n_outer_trials", minimum=1)
        self.n_inner_trials = check_positive_int(n_inner_trials, name="n_inner_trials", minimum=1)
        self.discriminating_set_size = check_positive_int(
            discriminating_set_size, name="discriminating_set_size", minimum=1
        )
        self.min_cluster_fraction = check_fraction(
            min_cluster_fraction, name="min_cluster_fraction"
        )
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.dimensions_: Optional[List[np.ndarray]] = None
        self.result_: Optional[ClusteringResult] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "DOC":
        """Extract ``n_clusters`` projected clusters one after another."""
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        rng = ensure_rng(self.random_state)
        n_objects, n_dimensions = data.shape
        width = self._effective_width(data)

        labels = np.full(n_objects, -1, dtype=int)
        dimensions: List[np.ndarray] = []
        remaining = np.arange(n_objects)
        for cluster_index in range(self.n_clusters):
            if remaining.size < 2:
                dimensions.append(np.empty(0, dtype=int))
                continue
            members, dims = self._find_one_cluster(data, remaining, width, rng)
            if members.size == 0:
                dimensions.append(np.empty(0, dtype=int))
                continue
            labels[members] = cluster_index
            dimensions.append(dims)
            remaining = np.setdiff1d(remaining, members)

        self.labels_ = labels
        self.dimensions_ = dimensions
        clusters = [
            ProjectedCluster(
                members=np.flatnonzero(labels == index),
                dimensions=dimensions[index] if index < len(dimensions) else np.empty(0, dtype=int),
            )
            for index in range(self.n_clusters)
        ]
        self.result_ = ClusteringResult(
            clusters=clusters,
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            objective=float("nan"),
            algorithm=type(self).__name__,
            parameters=self.get_params(),
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """:meth:`fit` then return the labels."""
        return self.fit(data).labels_

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters for reporting."""
        return {
            "n_clusters": self.n_clusters,
            "width": self.width,
            "beta": self.beta,
            "n_outer_trials": self.n_outer_trials,
            "n_inner_trials": self.n_inner_trials,
            "discriminating_set_size": self.discriminating_set_size,
            "min_cluster_fraction": self.min_cluster_fraction,
        }

    # ------------------------------------------------------------------ #
    def _effective_width(self, data: np.ndarray) -> float:
        if self.width is not None:
            return float(self.width)
        spans = data.max(axis=0) - data.min(axis=0)
        return float(0.15 * spans.mean())

    def _quality(self, n_members: int, n_dimensions: int) -> float:
        """DOC quality ``mu(|C|, |D|) = |C| (1/beta)^|D|`` (log-scaled)."""
        if n_members == 0 or n_dimensions == 0:
            return -np.inf
        return float(np.log(n_members) + n_dimensions * np.log(1.0 / self.beta))

    def _find_one_cluster(
        self,
        data: np.ndarray,
        remaining: np.ndarray,
        width: float,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Monte-Carlo search for the single best cluster among ``remaining``."""
        best_quality = -np.inf
        best_members = np.empty(0, dtype=int)
        best_dims = np.empty(0, dtype=int)
        min_size = max(int(self.min_cluster_fraction * remaining.size), 2)
        subset = data[remaining]

        for _ in range(self.n_outer_trials):
            seed_position = int(rng.integers(remaining.size))
            seed_values = subset[seed_position]
            for _ in range(self.n_inner_trials):
                sample_size = min(self.discriminating_set_size, remaining.size - 1)
                if sample_size < 1:
                    break
                choices = rng.choice(remaining.size, size=sample_size, replace=False)
                choices = choices[choices != seed_position]
                if choices.size == 0:
                    continue
                deviations = np.abs(subset[choices] - seed_values)
                dims = np.flatnonzero((deviations <= width).all(axis=0))
                if dims.size == 0:
                    continue
                inside = np.flatnonzero(
                    (np.abs(subset[:, dims] - seed_values[dims]) <= width).all(axis=1)
                )
                if inside.size < min_size:
                    continue
                quality = self._quality(inside.size, dims.size)
                if quality > best_quality:
                    best_quality = quality
                    best_members = remaining[inside]
                    best_dims = dims
        return best_members, best_dims


class FastDOC(DOC):
    """FastDOC: the heuristic variant that maximises the dimension count.

    Identical interface to :class:`DOC`; the difference is the inner-loop
    objective — FastDOC keeps the candidate whose discriminating set
    yields the largest number of relevant dimensions and only then
    materialises the cluster, which avoids scanning the dataset for every
    candidate box.
    """

    def _find_one_cluster(
        self,
        data: np.ndarray,
        remaining: np.ndarray,
        width: float,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        best_dims = np.empty(0, dtype=int)
        best_seed_position = -1
        min_size = max(int(self.min_cluster_fraction * remaining.size), 2)
        subset = data[remaining]

        for _ in range(self.n_outer_trials):
            seed_position = int(rng.integers(remaining.size))
            seed_values = subset[seed_position]
            for _ in range(self.n_inner_trials):
                sample_size = min(self.discriminating_set_size, remaining.size - 1)
                if sample_size < 1:
                    break
                choices = rng.choice(remaining.size, size=sample_size, replace=False)
                choices = choices[choices != seed_position]
                if choices.size == 0:
                    continue
                deviations = np.abs(subset[choices] - seed_values)
                dims = np.flatnonzero((deviations <= width).all(axis=0))
                if dims.size > best_dims.size:
                    best_dims = dims
                    best_seed_position = seed_position

        if best_seed_position < 0 or best_dims.size == 0:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        seed_values = subset[best_seed_position]
        inside = np.flatnonzero(
            (np.abs(subset[:, best_dims] - seed_values[best_dims]) <= width).all(axis=1)
        )
        if inside.size < min_size:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        return remaining[inside], best_dims
