"""Deterministic fault injection for the durability and execution layers.

Durability claims are only worth what can be demonstrated under
failure, so the atomic write path exposes three injection points —
``write``, ``fsync`` and ``rename`` — and consults the *active*
:class:`FaultPlan` at each one.  A plan is a seeded, reproducible list
of :class:`FaultSpec` entries saying "at the k-th write, tear the file
after j bytes", "block the 2nd rename with EACCES", "crash before the
fsync".  The chaos benchmark scenario and the corruption tests replay
the same plan to get the same failure, every run, on every machine.

Two fault families:

* **Write-path faults** (``op`` in ``write`` / ``fsync`` / ``rename``):
  fired synchronously inside :mod:`repro.reliability.atomic` while the
  plan is :func:`active`.  ``crash`` and ``torn`` raise
  :class:`InjectedCrash` — the in-process stand-in for ``kill -9``,
  deliberately leaving partial temp files behind; ``enospc`` and
  ``rename_blocked`` raise a real :class:`OSError` with the matching
  ``errno`` so production error handling is exercised.
* **Task faults** (``op == "task"``): applied by worker processes via
  :meth:`FaultPlan.apply_task_fault`, which SIGKILLs or stalls the
  *first* attempt of the chosen task.  A latch file under a caller-owned
  directory makes "first attempt only" deterministic across processes,
  which is what lets the executor's retry path be asserted exactly.

An activated plan also records every operation it observes in
``plan.operations`` — run a save once under an empty plan to learn the
write trace, then seed faults at every position of that trace (the
kill-at-every-write-syscall test does exactly this).
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs

PathLike = Union[str, Path]

#: Write-path fault kinds, in the order :meth:`FaultPlan.seeded` cycles them.
WRITE_KINDS = ("torn", "crash", "enospc", "rename_blocked")
#: Executor fault kinds.
TASK_KINDS = ("sigkill", "stall")

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "TASK_KINDS",
    "WRITE_KINDS",
    "active",
    "active_plan",
]


class InjectedFault(Exception):
    """Base class of every synthetically injected failure."""


class InjectedCrash(InjectedFault):
    """A simulated hard kill: the write path stops mid-operation.

    Handlers must treat this like the process dying — partial temp
    files are intentionally left on disk so recovery code faces exactly
    what a real ``kill -9`` leaves behind.
    """


@dataclass
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    op:
        Injection point: ``"write"``, ``"fsync"``, ``"rename"`` on the
        durability path, or ``"task"`` for executor faults.
    index:
        For write-path ops: fire on the ``index``-th occurrence of
        ``op`` observed by the plan (0-based).  For ``"task"``: the
        task's item index.
    kind:
        One of :data:`WRITE_KINDS` (write path) or :data:`TASK_KINDS`.
    after_bytes:
        ``torn`` / ``enospc`` writes commit this many leading bytes
        before failing.
    seconds:
        Sleep duration of a ``stall`` task fault.
    """

    op: str
    index: int
    kind: str
    after_bytes: int = 0
    seconds: float = 0.0


@dataclass
class FaultPlan:
    """A seeded, replayable list of faults plus the observed op trace."""

    specs: List[FaultSpec] = field(default_factory=list)
    #: Operations observed while the plan was active: ``(op, path)`` pairs.
    operations: List[Tuple[str, str]] = field(default_factory=list)
    #: Specs that actually fired, in firing order.
    fired: List[FaultSpec] = field(default_factory=list)

    @classmethod
    def seeded(
        cls,
        seed: int,
        trace: Sequence[Tuple[str, str]],
        *,
        n_faults: int = 1,
        kinds: Sequence[str] = WRITE_KINDS,
    ) -> "FaultPlan":
        """Plan ``n_faults`` write-path faults at seeded positions of ``trace``.

        ``trace`` is the operation list recorded by a previous (clean)
        activation — typically one probe save.  Positions and kinds are
        drawn from ``numpy.random.default_rng(seed)``, so the same seed
        and trace always plan the same faults.
        """
        if not trace:
            raise ValueError("cannot seed a fault plan from an empty operation trace")
        rng = np.random.default_rng(int(seed))
        count = min(int(n_faults), len(trace))
        picks = sorted(int(p) for p in rng.choice(len(trace), size=count, replace=False))
        specs: List[FaultSpec] = []
        for pick in picks:
            op = trace[pick][0]
            occurrence = sum(1 for other, _ in trace[:pick] if other == op)
            kind = str(kinds[int(rng.integers(len(kinds)))])
            if op == "fsync" and kind in ("torn", "enospc", "rename_blocked"):
                kind = "crash"  # only a crash makes sense at the fsync point
            if op == "rename" and kind in ("torn", "enospc"):
                kind = "rename_blocked"
            if op == "write" and kind == "rename_blocked":
                kind = "torn"
            specs.append(
                FaultSpec(
                    op=op,
                    index=occurrence,
                    kind=kind,
                    after_bytes=int(rng.integers(0, 256)),
                )
            )
        return cls(specs=specs)

    # ---- write-path injection (called from repro.reliability.atomic) ----

    def _observe(self, op: str, path: str) -> Optional[FaultSpec]:
        """Record one operation; return the spec that fires at it, if any."""
        occurrence = sum(1 for other, _ in self.operations if other == op)
        self.operations.append((op, path))
        for spec in self.specs:
            if spec.op == op and spec.index == occurrence:
                self.fired.append(spec)
                return spec
        return None

    # ---- executor injection (called from worker processes) --------------

    def task_spec(self, index: int) -> Optional[FaultSpec]:
        """The planned fault for task item ``index``, if any."""
        for spec in self.specs:
            if spec.op == "task" and spec.index == int(index):
                return spec
        return None

    def apply_task_fault(self, index: int, latch_dir: PathLike) -> bool:
        """Fire the planned fault for task ``index``, at most once.

        Called by the task function inside the worker process.  The
        latch file under ``latch_dir`` survives the worker's death, so
        retries of the same task skip the fault — which is precisely the
        "flaky once, fine on retry" failure the executor must absorb.
        Returns whether a fault fired (``stall`` returns after waking).
        """
        spec = self.task_spec(index)
        if spec is None:
            return False
        latch = Path(latch_dir) / ("task-fault-%d" % int(index))
        try:
            latch.touch(exist_ok=False)
        except FileExistsError:
            return False
        _record_fault("task", spec.kind, latch, index=int(index))
        if spec.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "stall":
            time.sleep(spec.seconds)
        else:
            raise ValueError("unknown task fault kind %r" % spec.kind)
        return True


def _record_fault(op: str, kind: str, path: PathLike, **extra: object) -> None:
    """Mirror a fired fault into the observability event log."""
    recorder = obs.get_recorder()
    if recorder is not None:
        recorder.incr("reliability.faults_injected")
        recorder.event("fault_injected", op=op, kind=kind, path=str(path), **extra)


_ACTIVE: Optional[FaultPlan] = None


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (this process only)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, or ``None`` outside fault testing."""
    return _ACTIVE


# ---- hooks used by the atomic write path --------------------------------


def guarded_write(handle, data: bytes, path: PathLike) -> None:
    """Write ``data`` to ``handle``, honouring any active write fault."""
    plan = _ACTIVE
    spec = plan._observe("write", str(path)) if plan is not None else None
    if spec is None:
        handle.write(data)
        return
    _record_fault("write", spec.kind, path)
    if spec.kind in ("torn", "enospc"):
        handle.write(data[: max(0, min(spec.after_bytes, len(data)))])
        handle.flush()
        if spec.kind == "torn":
            raise InjectedCrash(
                "injected torn write: killed after %d of %d bytes of %s"
                % (min(spec.after_bytes, len(data)), len(data), path)
            )
        raise OSError(errno.ENOSPC, "injected ENOSPC writing %s" % path)
    if spec.kind == "crash":
        raise InjectedCrash("injected crash before writing %s" % path)
    raise ValueError("unknown write fault kind %r" % spec.kind)


def before_fsync(path: PathLike) -> None:
    """Fault hook fired immediately before an fsync of ``path``."""
    plan = _ACTIVE
    spec = plan._observe("fsync", str(path)) if plan is not None else None
    if spec is None:
        return
    _record_fault("fsync", spec.kind, path)
    raise InjectedCrash("injected crash before fsync of %s" % path)


def before_rename(path: PathLike) -> None:
    """Fault hook fired immediately before the commit rename onto ``path``."""
    plan = _ACTIVE
    spec = plan._observe("rename", str(path)) if plan is not None else None
    if spec is None:
        return
    _record_fault("rename", spec.kind, path)
    if spec.kind == "rename_blocked":
        raise OSError(errno.EACCES, "injected blocked rename onto %s" % path)
    raise InjectedCrash("injected crash before rename onto %s" % path)
