"""Crash-safe file and directory writes (temp + fsync + rename).

Every durable write in this repository goes through this module, which
gives all of them the same contract:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_write_json` — the payload is written to a same-directory
  temp file, flushed and fsynced, then renamed over the target.  A kill
  at *any* point leaves either the old content or the new content at the
  target path, never a truncated hybrid; the worst debris is a stale
  ``*.tmp-*`` file, which :func:`remove_stale_temps` clears.
* :func:`atomic_write_dir` — multi-file payloads (an artifact, a
  checkpoint generation) are staged in a temp sibling directory and
  renamed into place as a unit.  Writers put the manifest last inside
  the staging block, so even the staging directory is never
  manifest-complete-but-arrays-torn.
* :func:`atomic_write_json` stamps the payload with a self-checksum
  (:data:`~repro.reliability.integrity.CHECKSUM_KEY`); :func:`read_json`
  verifies and strips it, raising
  :class:`~repro.reliability.integrity.IntegrityError` on parse failure
  or mismatch.

The three fault hooks of :mod:`repro.reliability.faults` are threaded
through every step, which is how the corruption tests kill the write
path at each individual syscall and assert the invariant above.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Union

from repro.reliability import faults
from repro.reliability.faults import InjectedCrash
from repro.reliability.integrity import (
    CHECKSUM_KEY,
    IntegrityError,
    stamp_checksum,
    verify_stamp,
)

PathLike = Union[str, Path]

#: Substring marking in-flight temp files/directories (safe to delete at rest).
TEMP_MARKER = ".tmp-"

_TEMP_COUNTER = itertools.count()

__all__ = [
    "TEMP_MARKER",
    "atomic_write_bytes",
    "atomic_write_dir",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "read_json",
    "remove_stale_temps",
    "stamp_json_file",
]


def _temp_sibling(path: Path) -> Path:
    return path.with_name("%s%s%d-%d" % (path.name, TEMP_MARKER, os.getpid(), next(_TEMP_COUNTER)))


def fsync_directory(path: PathLike) -> None:
    """Best-effort fsync of a directory (persists the rename itself)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse directory fsync; the rename is still atomic
    finally:
        os.close(fd)


def remove_stale_temps(directory: PathLike) -> int:
    """Delete leftover ``*.tmp-*`` debris from interrupted writes."""
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for entry in directory.iterdir():
        if TEMP_MARKER not in entry.name:
            continue
        try:
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def atomic_write_bytes(path: PathLike, data: bytes, *, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = Path(path)
    tmp = _temp_sibling(path)
    try:
        with open(tmp, "wb") as handle:
            faults.guarded_write(handle, bytes(data), path)
            handle.flush()
            if fsync:
                faults.before_fsync(path)
                os.fsync(handle.fileno())
        faults.before_rename(path)
        os.replace(tmp, path)
    except InjectedCrash:
        raise  # a simulated kill leaves its partial temp file behind, like a real one
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(path.parent)
    return path


def atomic_write_text(path: PathLike, text: str, *, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: PathLike,
    payload: Mapping[str, object],
    *,
    stamp: bool = True,
    fsync: bool = True,
) -> Path:
    """Atomically write a JSON payload, self-checksummed by default."""
    body: Mapping[str, object] = stamp_checksum(payload) if stamp else payload
    text = json.dumps(body, indent=2, sort_keys=True) + "\n"
    return atomic_write_text(path, text, fsync=fsync)


def read_json(path: PathLike, *, verify: bool = True) -> Dict[str, object]:
    """Read a JSON payload, verifying and stripping its checksum stamp.

    Raises :class:`IntegrityError` when the file does not parse or its
    stamp mismatches (``verify=True``); a payload without a stamp is a
    legacy write and is accepted unverified.  Missing files raise
    :class:`FileNotFoundError` as usual.
    """
    path = Path(path)
    with open(path, "r") as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except ValueError as exc:
        if verify:
            raise IntegrityError(
                "%s is not valid JSON (%s): the file is corrupt or truncated" % (path, exc),
                path=path,
            ) from exc
        raise
    if not isinstance(payload, dict):
        raise IntegrityError("%s does not hold a JSON object" % path, path=path)
    if verify:
        verify_stamp(payload, path=path)
    payload.pop(CHECKSUM_KEY, None)
    return payload


def stamp_json_file(path: PathLike) -> Path:
    """Re-stamp a JSON file's self-checksum after an in-place edit.

    Test helper: corruption tests (and schema-migration tooling) edit
    manifests directly and then re-stamp so only the *intended* change
    is visible to verification.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    payload.pop(CHECKSUM_KEY, None)
    return atomic_write_json(path, payload, stamp=True)


@contextmanager
def atomic_write_dir(path: PathLike) -> Iterator[Path]:
    """Stage a directory payload and rename it into place as a unit.

    Yields a temp sibling directory for the caller to populate; on
    clean exit the staging directory replaces ``path`` (an existing
    target is swapped out and removed).  On error the staging directory
    is deleted — except under an :class:`InjectedCrash`, which leaves
    the debris a real kill would.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = _temp_sibling(path)
    staging.mkdir()
    try:
        yield staging
    except InjectedCrash:
        raise
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    faults.before_rename(path)
    if path.exists():
        displaced = _temp_sibling(path)
        os.rename(path, displaced)
        try:
            os.rename(staging, path)
        except BaseException:
            os.rename(displaced, path)
            raise
        shutil.rmtree(displaced, ignore_errors=True)
    else:
        os.rename(staging, path)
    fsync_directory(path.parent)
