"""Content checksums and the typed corruption error.

Every durable payload in this repository — artifact arrays, checkpoint
buffers, bench records — carries SHA-256 content checksums in its JSON
manifest, and the manifest itself carries a self-checksum over its
canonical form.  Readers verify both before trusting a byte, so a torn
write, a flipped bit or a truncated file surfaces as a typed
:class:`IntegrityError` naming the damaged payload instead of a shape
mismatch deep inside numpy (or, worse, a silently wrong model).

:class:`IntegrityError` subclasses :class:`ValueError` so existing
callers that treat unreadable payloads as ``(OSError, ValueError)``
keep working unchanged.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: JSON key holding a payload's self-checksum (computed over the
#: canonical serialisation of every *other* key).
CHECKSUM_KEY = "content_checksum"

__all__ = [
    "CHECKSUM_KEY",
    "IntegrityError",
    "array_checksum",
    "checksum_arrays",
    "payload_checksum",
    "require_key",
    "sha256_hex",
    "stamp_checksum",
    "verify_array_checksums",
    "verify_stamp",
]


class IntegrityError(ValueError):
    """A durable payload failed verification (corrupt, torn or incomplete).

    Attributes
    ----------
    path:
        The on-disk file or directory that failed verification, when known.
    payload:
        The logical name of the damaged payload (e.g. the array key or
        manifest field), when the damage is narrower than the whole file.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[PathLike] = None,
        payload: Optional[str] = None,
    ):
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.payload = payload


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def array_checksum(array: np.ndarray) -> str:
    """Content checksum of one array (dtype + shape + C-order bytes).

    Hashing dtype and shape alongside the raw bytes means an array that
    round-trips with the same checksum is bit-identical *as an array*,
    not merely as a byte blob reinterpreted under another dtype.
    """
    array = np.asarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype.str).encode("ascii"))
    digest.update(repr(tuple(array.shape)).encode("ascii"))
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def checksum_arrays(arrays: Mapping[str, np.ndarray]) -> Dict[str, str]:
    """Per-array checksums for a bundle, keyed by array name."""
    return {name: array_checksum(array) for name, array in arrays.items()}


def verify_array_checksums(
    arrays: Mapping[str, np.ndarray],
    checksums: Mapping[str, str],
    *,
    path: PathLike,
) -> None:
    """Verify a loaded bundle against its recorded checksums.

    Every recorded array must be present and match; raises
    :class:`IntegrityError` naming the first damaged array.  An empty
    ``checksums`` mapping (legacy payload written before checksumming)
    verifies trivially.
    """
    for name in sorted(checksums):
        if name not in arrays:
            raise IntegrityError(
                "array %r recorded in the manifest is missing from %s" % (name, path),
                path=path,
                payload=name,
            )
        actual = array_checksum(arrays[name])
        if actual != checksums[name]:
            raise IntegrityError(
                "array %r in %s fails its content checksum "
                "(expected %s, got %s): the file is corrupt"
                % (name, path, checksums[name], actual),
                path=path,
                payload=name,
            )


def _canonical_json(payload: Mapping[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Mapping[str, object]) -> str:
    """Self-checksum of a JSON payload (canonical form, stamp key excluded)."""
    body = {key: value for key, value in payload.items() if key != CHECKSUM_KEY}
    return sha256_hex(_canonical_json(body).encode("utf-8"))


def stamp_checksum(payload: Mapping[str, object]) -> Dict[str, object]:
    """Copy of ``payload`` with its :data:`CHECKSUM_KEY` stamp set."""
    stamped = dict(payload)
    stamped[CHECKSUM_KEY] = payload_checksum(payload)
    return stamped


def verify_stamp(payload: Mapping[str, object], *, path: Optional[PathLike] = None) -> bool:
    """Verify a payload's self-checksum stamp.

    Returns ``True`` when a stamp was present and matched, ``False``
    when the payload carries no stamp (legacy — accepted unverified),
    and raises :class:`IntegrityError` on a mismatch.
    """
    recorded = payload.get(CHECKSUM_KEY)
    if recorded is None:
        return False
    actual = payload_checksum(payload)
    if recorded != actual:
        raise IntegrityError(
            "payload %s fails its content checksum (expected %s, got %s): "
            "the file is corrupt" % (path if path is not None else "<memory>", recorded, actual),
            path=path,
            payload=CHECKSUM_KEY,
        )
    return True


def require_key(
    mapping: Mapping[str, object],
    key: str,
    *,
    path: PathLike,
    kind: str = "payload",
):
    """``mapping[key]`` with a typed error naming the payload and key.

    A durable payload that parses but lacks a required key is damaged
    (or written by incompatible code); surfacing it as a bare
    ``KeyError`` hides *which file* is at fault, so this raises
    :class:`IntegrityError` naming both.
    """
    if key not in mapping:
        raise IntegrityError(
            "%s %s is missing required key %r" % (kind, path, key),
            path=path,
            payload=key,
        )
    return mapping[key]
