"""Crash-safe durability primitives shared by every persistence layer.

Three pieces, layered:

* :mod:`repro.reliability.integrity` — SHA-256 content checksums for
  arrays and JSON payloads, and the typed :class:`IntegrityError`
  raised whenever a durable payload fails verification.
* :mod:`repro.reliability.atomic` — temp + fsync + rename writes for
  files and whole directories (manifest-last protocol), plus
  checksum-verified JSON reads.
* :mod:`repro.reliability.faults` — seeded, replayable fault injection
  (torn writes, blocked renames, ENOSPC, crashes, worker SIGKILL, task
  stalls) threaded through the write path and the process executor, so
  the durability contract is *demonstrated* under failure, not assumed.

Consumed by :mod:`repro.serving.artifact` (model artifacts),
:mod:`repro.stream.checkpoint` (checkpoint generations with rollback),
:mod:`repro.bench.store` (resumable run records with quarantine) and
:mod:`repro.utils.executor` (fault-tolerant process execution).
"""

from repro.reliability.integrity import (
    CHECKSUM_KEY,
    IntegrityError,
    array_checksum,
    checksum_arrays,
    payload_checksum,
    require_key,
    sha256_hex,
    stamp_checksum,
    verify_array_checksums,
    verify_stamp,
)
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    TASK_KINDS,
    WRITE_KINDS,
    active,
    active_plan,
)
from repro.reliability.atomic import (
    TEMP_MARKER,
    atomic_write_bytes,
    atomic_write_dir,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    read_json,
    remove_stale_temps,
    stamp_json_file,
)

__all__ = [
    "CHECKSUM_KEY",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "IntegrityError",
    "TASK_KINDS",
    "TEMP_MARKER",
    "WRITE_KINDS",
    "active",
    "active_plan",
    "array_checksum",
    "atomic_write_bytes",
    "atomic_write_dir",
    "atomic_write_json",
    "atomic_write_text",
    "checksum_arrays",
    "fsync_directory",
    "payload_checksum",
    "read_json",
    "remove_stale_temps",
    "require_key",
    "sha256_hex",
    "stamp_checksum",
    "stamp_json_file",
    "verify_array_checksums",
    "verify_stamp",
]
