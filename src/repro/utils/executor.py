"""Execution backends shared by the experiment harness and the benchmark runner.

Three interchangeable executors implement the same two-method protocol:

``map(fn, items)``
    Apply ``fn`` to every item and return the results *in input order*
    (the contract the experiment harness relies on for reproducible
    best-of-N reductions).
``imap_unordered(fn, items)``
    Yield ``(index, result)`` pairs as they complete — the scenario
    runner uses this to persist task records incrementally so an
    interrupted run can resume from its store.

The process executor prefers the ``fork`` start method (registered
scenarios and closures survive into the workers); where ``fork`` is
unavailable it falls back to ``spawn``, which still supports the
built-in scenario registry because workers re-import it.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """In-process, in-order execution — the default everywhere."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class ThreadExecutor:
    """Thread-pool execution for workloads dominated by GIL-releasing numpy."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
            for future in _as_completed(futures):
                yield futures[future], future.result()


def _as_completed(futures):
    from concurrent.futures import as_completed

    return as_completed(futures)


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


class ProcessExecutor:
    """Multiprocessing fan-out used by the sharded scenario runner."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.workers = int(workers)
        self._context = _preferred_context()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        with self._context.Pool(processes=min(self.workers, len(items))) as pool:
            return pool.map(fn, items)

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        payloads = [(fn, (index, item)) for index, item in enumerate(items)]
        with self._context.Pool(processes=min(self.workers, len(items))) as pool:
            for index, result in pool.imap_unordered(_call_indexed, payloads):
                yield index, result


def _call_indexed(payload):
    fn, (index, item) = payload
    return index, fn(item)


def resolve_executor(workers: int):
    """The executor for ``workers`` shards: serial for 1, processes otherwise."""
    if workers <= 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
