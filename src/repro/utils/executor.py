"""Execution backends shared by the experiment harness and the benchmark runner.

Three interchangeable executors implement the same two-method protocol:

``map(fn, items)``
    Apply ``fn`` to every item and return the results *in input order*
    (the contract the experiment harness relies on for reproducible
    best-of-N reductions).
``imap_unordered(fn, items)``
    Yield ``(index, result)`` pairs as they complete — the scenario
    runner uses this to persist task records incrementally so an
    interrupted run can resume from its store.

:class:`ProcessExecutor` is fault tolerant: it runs **one process per
task** (no shared pool to poison), enforces an optional per-task
deadline, and retries failed tasks a bounded number of times with
deterministic exponential backoff.  A worker killed by the OS (OOM
killer, SIGKILL) fails only its own task; after the retry budget is
exhausted the task's slot yields a :class:`TaskFault` describing what
happened instead of silently vanishing or raising mid-iteration, so
the caller decides how to account for it.  Workers are non-daemonic,
so a task may itself spawn a nested ``ProcessExecutor`` (the chaos
benchmark scenario does exactly this inside a runner shard).

The process executor prefers the ``fork`` start method (registered
scenarios and closures survive into the workers); where ``fork`` is
unavailable it falls back to ``spawn``, which still supports the
built-in scenario registry because workers re-import it.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro import obs

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ExecutorTaskError",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskFault",
    "ThreadExecutor",
    "resolve_executor",
]


@dataclass
class TaskFault:
    """Terminal failure of one task after its retry budget ran out.

    ``kind`` is ``"error"`` (the function raised), ``"crash"`` (the
    worker process died without reporting — SIGKILL, OOM, unpicklable
    result) or ``"timeout"`` (the per-task deadline expired and the
    worker was killed).  ``error`` carries the original exception when
    it survived pickling back to the parent.
    """

    kind: str
    message: str
    attempts: int
    error: Optional[BaseException] = None


class ExecutorTaskError(RuntimeError):
    """Raised by ``map`` when a task still fails after every retry."""


def _run_traced(fn: Callable[[T], R], index: int, item: T, backend: str) -> R:
    """Run one in-process task under its executor span (no-op when obs is off)."""
    with obs.span("executor.task", category="executor", index=index, backend=backend):
        return fn(item)


class SerialExecutor:
    """In-process, in-order execution — the default everywhere."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [_run_traced(fn, index, item, "serial") for index, item in enumerate(items)]

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, _run_traced(fn, index, item, "serial")


class ThreadExecutor:
    """Thread-pool execution for workloads dominated by GIL-releasing numpy."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            futures = [
                pool.submit(_run_traced, fn, index, item, "thread")
                for index, item in enumerate(items)
            ]
            return [future.result() for future in futures]

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            futures = {
                pool.submit(_run_traced, fn, index, item, "thread"): index
                for index, item in enumerate(items)
            }
            for future in _as_completed(futures):
                yield futures[future], future.result()


def _as_completed(futures):
    from concurrent.futures import as_completed

    return as_completed(futures)


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _task_entry(fn, item, conn, record_obs: bool = False) -> None:
    """Worker-process body: run one task, report through the pipe.

    With ``record_obs`` the worker opens a fresh recorder (replacing any
    recorder inherited across ``fork``), runs the task under a root
    span, and appends the exported observability state as a fourth
    payload element — the parent grafts it under its per-task span.
    """
    recorder = obs.begin_child_recording() if record_obs else None
    try:
        if recorder is not None:
            with recorder.span("task.run", "executor"):
                result = fn(item)
        else:
            result = fn(item)
        payload = ("ok", result, None)
    except BaseException as exc:  # report *everything*, the parent classifies
        payload = ("error", exc, traceback.format_exc())
    if recorder is not None:
        payload = payload + (recorder.export_state(),)
        obs.disable()
    try:
        conn.send(payload)
    except Exception:
        # Unpicklable result or exception: report the traceback as text.
        try:
            fallback = ("error", None, traceback.format_exc())
            if recorder is not None:
                fallback = fallback + (recorder.export_state(),)
            conn.send(fallback)
        except Exception:
            pass  # parent will see EOF and classify the task as crashed
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Running:
    conn: object
    process: object
    index: int
    attempt: int
    deadline: Optional[float]
    started: float = 0.0  # recorder-relative launch time (obs only)


class ProcessExecutor:
    """Process-per-task fan-out with deadlines, retries and crash isolation.

    Parameters
    ----------
    workers:
        Maximum concurrently running task processes.
    task_timeout:
        Per-task wall-clock deadline in seconds; an overrunning worker
        is killed and the attempt counts as a ``timeout`` failure.
        ``None`` disables the deadline.
    max_retries:
        Failed attempts (error, crash or timeout) are retried up to
        this many times before the task yields a :class:`TaskFault`.
    retry_backoff:
        Base delay before retry ``n`` (1-based): ``retry_backoff *
        2**(n-1)`` seconds — deterministic, so sequencing under faults
        is reproducible.
    """

    def __init__(
        self,
        workers: int,
        *,
        task_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.25,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive, got %r" % task_timeout)
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative, got %d" % max_retries)
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative, got %r" % retry_backoff)
        self.workers = int(workers)
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._context = _preferred_context()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        results: List[R] = [None] * len(items)  # type: ignore[list-item]
        for index, outcome in self.imap_unordered(fn, items):
            if isinstance(outcome, TaskFault):
                if outcome.error is not None:
                    raise outcome.error
                raise ExecutorTaskError(
                    "task %d failed (%s) after %d attempt(s): %s"
                    % (index, outcome.kind, outcome.attempts, outcome.message)
                )
            results[index] = outcome
        return results

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        yield from self._schedule(fn, items)

    # ---- scheduler -------------------------------------------------------

    def _schedule(self, fn, items):
        pending = deque((index, 1) for index in range(len(items)))  # (item index, attempt)
        backoff: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
        running: dict = {}  # conn -> _Running
        try:
            while pending or backoff or running:
                now = time.monotonic()
                due = [entry for entry in backoff if entry[0] <= now]
                for entry in due:
                    backoff.remove(entry)
                    pending.append((entry[1], entry[2]))
                while pending and len(running) < self.workers:
                    index, attempt = pending.popleft()
                    entry = self._launch(fn, items[index], index, attempt)
                    running[entry.conn] = entry
                if not running:
                    wake = min(entry[0] for entry in backoff)
                    delay = wake - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.5))
                    continue
                yield from self._reap(running, pending, backoff)
        finally:
            for entry in running.values():
                self._kill(entry)

    def _reap(self, running, pending, backoff):
        """Wait for one completion or deadline; settle what fired."""
        wakeups = [entry.deadline for entry in running.values() if entry.deadline is not None]
        wakeups.extend(entry[0] for entry in backoff)
        timeout = None
        if wakeups:
            timeout = max(0.0, min(wakeups) - time.monotonic())
        ready = mp_connection.wait(list(running), timeout=timeout)
        for conn in ready:
            entry = running.pop(conn)
            yield from self._settle(entry, self._collect(entry), backoff)
        now = time.monotonic()
        expired = [
            conn
            for conn, entry in running.items()
            if entry.deadline is not None and entry.deadline <= now
        ]
        for conn in expired:
            entry = running.pop(conn)
            self._kill(entry)
            outcome = (
                "timeout",
                None,
                "task exceeded its %.1fs deadline and was killed" % self.task_timeout,
                None,
            )
            yield from self._settle(entry, outcome, backoff)

    def _launch(self, fn, item, index: int, attempt: int) -> _Running:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        recorder = obs.get_recorder()
        process = self._context.Process(
            target=_task_entry,
            args=(fn, item, child_conn, recorder is not None),
            daemon=False,
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.task_timeout if self.task_timeout is not None else None
        )
        return _Running(
            conn=parent_conn,
            process=process,
            index=index,
            attempt=attempt,
            deadline=deadline,
            started=recorder.now() if recorder is not None else 0.0,
        )

    def _collect(self, entry: _Running):
        """Read the worker's report; classify a dead-silent worker as a crash.

        Returns ``(status, value, message, obs_state)`` — the fourth
        element is the worker's exported recorder state when the parent
        asked for it (``None`` for untraced runs and crashed workers).
        """
        try:
            report = entry.conn.recv()
        except (EOFError, OSError):
            entry.process.join(timeout=5.0)
            return (
                "crash",
                None,
                "worker for task %d died without reporting (exitcode %s)"
                % (entry.index, entry.process.exitcode),
                None,
            )
        finally:
            try:
                entry.conn.close()
            except Exception:
                pass
        entry.process.join(timeout=5.0)
        status, value, detail = report[0], report[1], report[2]
        obs_state = report[3] if len(report) > 3 else None
        if status == "ok":
            return ("ok", value, None, obs_state)
        message = detail if detail else "".join(traceback.format_exception_only(type(value), value))
        return ("error", value, message, obs_state)

    def _settle(self, entry: _Running, outcome, backoff):
        status, value, message, obs_state = outcome
        will_retry = status != "ok" and entry.attempt <= self.max_retries
        recorder = obs.get_recorder()
        if recorder is not None:
            # One parent-side span per attempt; the worker's own spans
            # (shipped through the result pipe) are grafted under it with
            # their timestamps re-based onto this recorder's timeline.
            span_id = recorder.add_span(
                "executor.task",
                "executor",
                entry.started,
                recorder.now() - entry.started,
                args={"index": entry.index, "attempt": entry.attempt, "status": status},
            )
            if obs_state is not None:
                recorder.ingest(obs_state, at=entry.started, parent_span_id=span_id)
            if entry.attempt == 1:
                recorder.incr("executor.tasks")
            if status == "error":
                recorder.incr("executor.task_errors")
            elif status == "crash":
                recorder.incr("executor.crashes")
            elif status == "timeout":
                recorder.incr("executor.timeouts")
            if will_retry:
                recorder.incr("executor.retries")
                recorder.event(
                    "retry", index=entry.index, attempt=entry.attempt, kind=status
                )
        if status == "ok":
            yield entry.index, value
            return
        if will_retry:
            delay = self.retry_backoff * (2 ** (entry.attempt - 1))
            backoff.append((time.monotonic() + delay, entry.index, entry.attempt + 1))
            return
        if recorder is not None:
            recorder.incr("executor.task_faults")
            recorder.event(
                "task_fault", index=entry.index, kind=status, attempts=entry.attempt
            )
        yield entry.index, TaskFault(
            kind=status,
            message=str(message),
            attempts=entry.attempt,
            error=value if isinstance(value, BaseException) else None,
        )

    def _kill(self, entry: _Running) -> None:
        if entry.process.is_alive():
            entry.process.terminate()
            entry.process.join(timeout=0.5)
            if entry.process.is_alive():
                entry.process.kill()
                entry.process.join(timeout=5.0)
        try:
            entry.conn.close()
        except Exception:
            pass


def resolve_executor(
    workers: int,
    *,
    task_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.25,
):
    """The executor for ``workers`` shards: serial for 1, processes otherwise."""
    if workers <= 1:
        return SerialExecutor()
    return ProcessExecutor(
        workers,
        task_timeout=task_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
    )
