"""Execution backends shared by the experiment harness and the benchmark runner.

Three interchangeable executors implement the same two-method protocol:

``map(fn, items)``
    Apply ``fn`` to every item and return the results *in input order*
    (the contract the experiment harness relies on for reproducible
    best-of-N reductions).
``imap_unordered(fn, items)``
    Yield ``(index, result)`` pairs as they complete — the scenario
    runner uses this to persist task records incrementally so an
    interrupted run can resume from its store.

:class:`ProcessExecutor` is fault tolerant: it runs **one process per
task** (no shared pool to poison), enforces an optional per-task
deadline, and retries failed tasks a bounded number of times with
deterministic exponential backoff.  A worker killed by the OS (OOM
killer, SIGKILL) fails only its own task; after the retry budget is
exhausted the task's slot yields a :class:`TaskFault` describing what
happened instead of silently vanishing or raising mid-iteration, so
the caller decides how to account for it.  Workers are non-daemonic,
so a task may itself spawn a nested ``ProcessExecutor`` (the chaos
benchmark scenario does exactly this inside a runner shard).

The process executor prefers the ``fork`` start method (registered
scenarios and closures survive into the workers); where ``fork`` is
unavailable it falls back to ``spawn``, which still supports the
built-in scenario registry because workers re-import it.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ExecutorTaskError",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskFault",
    "ThreadExecutor",
    "resolve_executor",
]


@dataclass
class TaskFault:
    """Terminal failure of one task after its retry budget ran out.

    ``kind`` is ``"error"`` (the function raised), ``"crash"`` (the
    worker process died without reporting — SIGKILL, OOM, unpicklable
    result) or ``"timeout"`` (the per-task deadline expired and the
    worker was killed).  ``error`` carries the original exception when
    it survived pickling back to the parent.
    """

    kind: str
    message: str
    attempts: int
    error: Optional[BaseException] = None


class ExecutorTaskError(RuntimeError):
    """Raised by ``map`` when a task still fails after every retry."""


class SerialExecutor:
    """In-process, in-order execution — the default everywhere."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class ThreadExecutor:
    """Thread-pool execution for workloads dominated by GIL-releasing numpy."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
            for future in _as_completed(futures):
                yield futures[future], future.result()


def _as_completed(futures):
    from concurrent.futures import as_completed

    return as_completed(futures)


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _task_entry(fn, item, conn) -> None:
    """Worker-process body: run one task, report through the pipe."""
    try:
        payload = ("ok", fn(item), None)
    except BaseException as exc:  # report *everything*, the parent classifies
        payload = ("error", exc, traceback.format_exc())
    try:
        conn.send(payload)
    except Exception:
        # Unpicklable result or exception: report the traceback as text.
        try:
            conn.send(("error", None, traceback.format_exc()))
        except Exception:
            pass  # parent will see EOF and classify the task as crashed
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Running:
    conn: object
    process: object
    index: int
    attempt: int
    deadline: Optional[float]


class ProcessExecutor:
    """Process-per-task fan-out with deadlines, retries and crash isolation.

    Parameters
    ----------
    workers:
        Maximum concurrently running task processes.
    task_timeout:
        Per-task wall-clock deadline in seconds; an overrunning worker
        is killed and the attempt counts as a ``timeout`` failure.
        ``None`` disables the deadline.
    max_retries:
        Failed attempts (error, crash or timeout) are retried up to
        this many times before the task yields a :class:`TaskFault`.
    retry_backoff:
        Base delay before retry ``n`` (1-based): ``retry_backoff *
        2**(n-1)`` seconds — deterministic, so sequencing under faults
        is reproducible.
    """

    def __init__(
        self,
        workers: int,
        *,
        task_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.25,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive, got %r" % task_timeout)
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative, got %d" % max_retries)
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative, got %r" % retry_backoff)
        self.workers = int(workers)
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._context = _preferred_context()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        results: List[R] = [None] * len(items)  # type: ignore[list-item]
        for index, outcome in self.imap_unordered(fn, items):
            if isinstance(outcome, TaskFault):
                if outcome.error is not None:
                    raise outcome.error
                raise ExecutorTaskError(
                    "task %d failed (%s) after %d attempt(s): %s"
                    % (index, outcome.kind, outcome.attempts, outcome.message)
                )
            results[index] = outcome
        return results

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        items = list(items)
        if not items:
            return
        yield from self._schedule(fn, items)

    # ---- scheduler -------------------------------------------------------

    def _schedule(self, fn, items):
        pending = deque((index, 1) for index in range(len(items)))  # (item index, attempt)
        backoff: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
        running: dict = {}  # conn -> _Running
        try:
            while pending or backoff or running:
                now = time.monotonic()
                due = [entry for entry in backoff if entry[0] <= now]
                for entry in due:
                    backoff.remove(entry)
                    pending.append((entry[1], entry[2]))
                while pending and len(running) < self.workers:
                    index, attempt = pending.popleft()
                    entry = self._launch(fn, items[index], index, attempt)
                    running[entry.conn] = entry
                if not running:
                    wake = min(entry[0] for entry in backoff)
                    delay = wake - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.5))
                    continue
                yield from self._reap(running, pending, backoff)
        finally:
            for entry in running.values():
                self._kill(entry)

    def _reap(self, running, pending, backoff):
        """Wait for one completion or deadline; settle what fired."""
        wakeups = [entry.deadline for entry in running.values() if entry.deadline is not None]
        wakeups.extend(entry[0] for entry in backoff)
        timeout = None
        if wakeups:
            timeout = max(0.0, min(wakeups) - time.monotonic())
        ready = mp_connection.wait(list(running), timeout=timeout)
        for conn in ready:
            entry = running.pop(conn)
            yield from self._settle(entry, self._collect(entry), backoff)
        now = time.monotonic()
        expired = [
            conn
            for conn, entry in running.items()
            if entry.deadline is not None and entry.deadline <= now
        ]
        for conn in expired:
            entry = running.pop(conn)
            self._kill(entry)
            outcome = (
                "timeout",
                None,
                "task exceeded its %.1fs deadline and was killed" % self.task_timeout,
            )
            yield from self._settle(entry, outcome, backoff)

    def _launch(self, fn, item, index: int, attempt: int) -> _Running:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_task_entry, args=(fn, item, child_conn), daemon=False
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.task_timeout if self.task_timeout is not None else None
        )
        return _Running(
            conn=parent_conn, process=process, index=index, attempt=attempt, deadline=deadline
        )

    def _collect(self, entry: _Running):
        """Read the worker's report; classify a dead-silent worker as a crash."""
        try:
            status, value, detail = entry.conn.recv()
        except (EOFError, OSError):
            entry.process.join(timeout=5.0)
            return (
                "crash",
                None,
                "worker for task %d died without reporting (exitcode %s)"
                % (entry.index, entry.process.exitcode),
            )
        finally:
            try:
                entry.conn.close()
            except Exception:
                pass
        entry.process.join(timeout=5.0)
        if status == "ok":
            return ("ok", value, None)
        message = detail if detail else "".join(traceback.format_exception_only(type(value), value))
        return ("error", value, message)

    def _settle(self, entry: _Running, outcome, backoff):
        status, value, message = outcome
        if status == "ok":
            yield entry.index, value
            return
        if entry.attempt <= self.max_retries:
            delay = self.retry_backoff * (2 ** (entry.attempt - 1))
            backoff.append((time.monotonic() + delay, entry.index, entry.attempt + 1))
            return
        yield entry.index, TaskFault(
            kind=status,
            message=str(message),
            attempts=entry.attempt,
            error=value if isinstance(value, BaseException) else None,
        )

    def _kill(self, entry: _Running) -> None:
        if entry.process.is_alive():
            entry.process.terminate()
            entry.process.join(timeout=0.5)
            if entry.process.is_alive():
                entry.process.kill()
                entry.process.join(timeout=5.0)
        try:
            entry.conn.close()
        except Exception:
            pass


def resolve_executor(
    workers: int,
    *,
    task_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.25,
):
    """The executor for ``workers`` shards: serial for 1, processes otherwise."""
    if workers <= 1:
        return SerialExecutor()
    return ProcessExecutor(
        workers,
        task_timeout=task_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
    )
