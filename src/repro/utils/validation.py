"""Input validation helpers shared across the library.

The algorithms in this package operate on plain ``numpy`` arrays.  The
validators below convert inputs to the canonical representation
(``float64`` C-contiguous matrices) and raise informative errors early so
that failures do not surface deep inside the iterative optimisation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


def check_array_2d(
    data,
    *,
    name: str = "data",
    min_rows: int = 1,
    min_cols: int = 1,
    allow_nan: bool = False,
) -> np.ndarray:
    """Validate and convert ``data`` to a 2-D float64 array.

    Parameters
    ----------
    data:
        Anything convertible by :func:`numpy.asarray`.
    name:
        Name used in error messages.
    min_rows, min_cols:
        Minimum acceptable shape.
    allow_nan:
        If ``False`` (default) the presence of NaN or infinity raises.

    Returns
    -------
    numpy.ndarray
        A float64 array of shape ``(n, d)``.
    """
    array = np.asarray(data, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError("%s must be 2-dimensional, got %d dimensions" % (name, array.ndim))
    n_rows, n_cols = array.shape
    if n_rows < min_rows:
        raise ValueError("%s must have at least %d rows, got %d" % (name, min_rows, n_rows))
    if n_cols < min_cols:
        raise ValueError("%s must have at least %d columns, got %d" % (name, min_cols, n_cols))
    if not allow_nan and not np.all(np.isfinite(array)):
        raise ValueError("%s contains NaN or infinite values" % name)
    return np.ascontiguousarray(array)


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate an integer parameter that must be at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError("%s must be an integer, got %r" % (name, type(value).__name__))
    value = int(value)
    if value < minimum:
        raise ValueError("%s must be >= %d, got %d" % (name, minimum, value))
    return value


def check_cluster_count(k, n_objects: int) -> int:
    """Validate the requested number of clusters against the dataset size."""
    k = check_positive_int(k, name="n_clusters", minimum=1)
    if k > n_objects:
        raise ValueError(
            "n_clusters=%d cannot exceed the number of objects (%d)" % (k, n_objects)
        )
    return k


def check_fraction(value, *, name: str, inclusive_low: bool = True, inclusive_high: bool = True) -> float:
    """Validate a parameter constrained to the unit interval."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low_bracket = "[" if inclusive_low else "("
        high_bracket = "]" if inclusive_high else ")"
        raise ValueError(
            "%s must lie in %s0, 1%s, got %r" % (name, low_bracket, high_bracket, value)
        )
    return value


def check_probability(value, *, name: str) -> float:
    """Validate a strictly-positive probability below one."""
    return check_fraction(value, name=name, inclusive_low=False, inclusive_high=False)


def check_membership_labels(labels, n_objects: int, *, name: str = "labels") -> np.ndarray:
    """Validate an integer label vector of length ``n_objects``.

    A value of ``-1`` denotes an outlier / unassigned object; values
    ``>= 0`` denote cluster indices.
    """
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ValueError("%s must be 1-dimensional" % name)
    if array.shape[0] != n_objects:
        raise ValueError(
            "%s has length %d, expected %d" % (name, array.shape[0], n_objects)
        )
    if not np.issubdtype(array.dtype, np.integer):
        as_int = array.astype(int)
        if not np.all(as_int == array):
            raise ValueError("%s must contain integers" % name)
        array = as_int
    if array.size and array.min() < -1:
        raise ValueError("%s may not contain values below -1" % name)
    return array.astype(int)


def check_index_sequence(
    indices: Iterable[int],
    upper: int,
    *,
    name: str = "indices",
    allow_empty: bool = True,
    unique: bool = True,
) -> np.ndarray:
    """Validate a sequence of indices into a dimension of size ``upper``."""
    array = np.asarray(list(indices), dtype=int)
    if array.ndim != 1:
        raise ValueError("%s must be a flat sequence of integers" % name)
    if not allow_empty and array.size == 0:
        raise ValueError("%s may not be empty" % name)
    if array.size:
        if array.min() < 0 or array.max() >= upper:
            raise ValueError(
                "%s must lie in [0, %d), got range [%d, %d]"
                % (name, upper, array.min(), array.max())
            )
        if unique and len(np.unique(array)) != len(array):
            raise ValueError("%s contains duplicate entries" % name)
    return array


def check_random_partition_sizes(sizes: Sequence[int], total: Optional[int] = None) -> np.ndarray:
    """Validate per-cluster sizes (all positive; optionally summing to ``total``)."""
    array = np.asarray(list(sizes), dtype=int)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("sizes must be a non-empty flat sequence")
    if np.any(array <= 0):
        raise ValueError("all cluster sizes must be positive")
    if total is not None and int(array.sum()) != int(total):
        raise ValueError(
            "cluster sizes sum to %d, expected %d" % (int(array.sum()), int(total))
        )
    return array
