"""Shared utilities: RNG handling, validation helpers, timing.

These helpers are intentionally small and dependency-free so that every
other subpackage (core algorithm, baselines, data generators, experiment
harness) can rely on them without creating import cycles.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array_2d,
    check_cluster_count,
    check_fraction,
    check_positive_int,
    check_probability,
)
from repro.utils.timing import Stopwatch

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_array_2d",
    "check_cluster_count",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "Stopwatch",
]
