"""Lightweight timing helpers used by the scalability experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Stopwatch:
    """Accumulate named wall-clock timings.

    The scalability experiment (Figure 8 of the paper) reports the total
    execution time of ten repeated runs.  ``Stopwatch`` collects the
    per-run durations so the harness can report totals, means and
    medians without re-running anything.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.measure("run"):
    ...     _ = sum(range(1000))
    >>> watch.total("run") >= 0.0
    True
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    def measure(self, label: str) -> "_StopwatchContext":
        """Return a context manager recording one duration under ``label``."""
        return _StopwatchContext(self, label)

    def add(self, label: str, duration: float) -> None:
        """Record an externally measured ``duration`` (seconds)."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.records.setdefault(label, []).append(float(duration))

    def total(self, label: str) -> float:
        """Total recorded seconds for ``label`` (0.0 when unknown)."""
        return float(sum(self.records.get(label, [])))

    def count(self, label: str) -> int:
        """Number of measurements recorded for ``label``."""
        return len(self.records.get(label, []))

    def mean(self, label: str) -> float:
        """Mean duration for ``label``; raises if nothing was recorded."""
        values = self.records.get(label)
        if not values:
            raise KeyError("no measurements recorded for label %r" % label)
        return float(sum(values) / len(values))

    def labels(self) -> List[str]:
        """All labels with at least one measurement."""
        return sorted(self.records)


class _StopwatchContext:
    """Context manager produced by :meth:`Stopwatch.measure`."""

    def __init__(self, watch: Stopwatch, label: str) -> None:
        self._watch = watch
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_StopwatchContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self._watch.add(self._label, time.perf_counter() - self._start)
