"""Random number generator helpers.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a
:class:`numpy.random.Generator`.  Normalising that argument in one place
keeps the individual algorithms small and guarantees reproducibility of
experiments: the experiment harness seeds a single parent generator and
spawns independent child generators for repeated runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator which is returned
        unchanged.

    Returns
    -------
    numpy.random.Generator
        A ready-to-use generator.

    Raises
    ------
    TypeError
        If ``random_state`` is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError("random_state seed must be non-negative, got %d" % random_state)
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed or a numpy Generator, got %r"
        % type(random_state).__name__
    )


def spawn_rngs(random_state: RandomState, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Independent streams are needed when an experiment repeats an
    algorithm several times (the paper repeats every experiment 10 times
    and keeps the best objective score); each repeat must not share its
    random stream with the others.

    Parameters
    ----------
    random_state:
        Seed or generator for the parent stream.
    count:
        Number of child generators to create.

    Returns
    -------
    list of numpy.random.Generator
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    parent = ensure_rng(random_state)
    seeds = parent.integers(0, 2**32 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def random_seed_from(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (useful to forward seeds)."""
    return int(rng.integers(0, 2**32 - 1))


def shuffled(values: Sequence, rng: Optional[np.random.Generator] = None) -> list:
    """Return a shuffled copy of ``values`` without mutating the input."""
    generator = ensure_rng(rng)
    out = list(values)
    generator.shuffle(out)
    return out
