"""repro — reproduction of SSPC (Semi-Supervised Projected Clustering).

This library reproduces the system described in "On Discovery of
Extremely Low-Dimensional Clusters using Semi-Supervised Projected
Clustering" (Yip, Cheung, Ng; ICDE 2005):

* :class:`repro.SSPC` — the paper's algorithm, including the robust
  objective function, the two selection-threshold schemes, grid-based
  initialisation from labeled objects / labeled dimensions, and the
  iterative medoid/median optimisation.
* :mod:`repro.baselines` — PROCLUS, HARP, CLARANS, DOC and plain
  k-means / k-medoids, implemented from scratch for comparison.
* :mod:`repro.data` — synthetic generators following the paper's data
  model, including the multiple-groupings construction.
* :mod:`repro.semisupervision` — labeled objects / dimensions, knowledge
  sampling protocols, constraints, and noisy-knowledge screening.
* :mod:`repro.evaluation` — the Adjusted Rand Index used by the paper
  plus auxiliary metrics.
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of the paper's evaluation section.
* :mod:`repro.serving` — model artifacts and high-throughput
  out-of-sample inference: save a fitted model, reload it in another
  process, and assign batches of unseen points to the learned projected
  clusters (``python -m repro.serve`` for the command line).
* :mod:`repro.stream` — online projected clustering over unbounded
  drifting streams: micro-batch folding through the serving index,
  cluster spawn/retire lifecycle, per-cluster drift adaptation and
  resumable checkpoints (``python -m repro.stream`` for the command
  line).

Quickstart
----------
>>> from repro import SSPC
>>> from repro.data import make_projected_clusters
>>> dataset = make_projected_clusters(n_objects=300, n_dimensions=60,
...                                   n_clusters=3, avg_cluster_dimensionality=6,
...                                   random_state=0)
>>> model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(dataset.data)
>>> labels = model.labels_
"""

from repro.core.model import OUTLIER_LABEL, ClusteringResult, ProjectedCluster
from repro.core.sspc import SSPC
from repro.semisupervision.knowledge import Knowledge
from repro.serving import ModelArtifact, ProjectedClusterIndex, load_artifact
from repro.stream import StreamConfig, StreamingSSPC

__version__ = "1.2.0"

__all__ = [
    "SSPC",
    "Knowledge",
    "ClusteringResult",
    "ProjectedCluster",
    "OUTLIER_LABEL",
    "ModelArtifact",
    "ProjectedClusterIndex",
    "load_artifact",
    "StreamConfig",
    "StreamingSSPC",
    "__version__",
]
