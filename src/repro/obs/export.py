"""Exporters: Chrome trace-event JSON and crash-safe metrics snapshots.

``chrome_trace`` renders a recorder (or an exported state dict) into the
Chrome trace-event format — an object with a ``traceEvents`` list of
complete (``"ph": "X"``) and instant (``"ph": "i"``) events — which
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  ``metrics_snapshot`` summarises counters, gauges,
histograms and events into a single JSON document.

Both artifacts are written through :mod:`repro.reliability.atomic`
(temp + fsync + rename), so a crash mid-export can never leave a
half-written trace; the metrics snapshot additionally carries the
reliability layer's content checksum stamp.  The imports are lazy to
keep ``repro.obs`` dependency-free for the instrumented layers.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.obs import core
from repro.obs.histogram import nearest_rank

__all__ = [
    "chrome_trace",
    "load_chrome_trace",
    "metrics_snapshot",
    "summarize_histogram",
    "trace_session",
    "write_chrome_trace",
    "write_metrics",
]

_MICRO = 1e6


def _as_state(source: Union[core.Recorder, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(source, core.Recorder):
        return source.export_state()
    return source


def chrome_trace(source: Union[core.Recorder, Dict[str, Any]]) -> Dict[str, Any]:
    """Render a recorder (or exported state) as Chrome trace-event JSON."""
    state = _as_state(source)
    root_pid = int(state.get("pid", 0))
    events: List[Dict[str, Any]] = []
    pids = {root_pid}
    for span in state.get("spans", ()):
        pids.add(int(span.get("pid", root_pid)))
    for ev in state.get("events", ()):
        pids.add(int(ev.get("pid", root_pid)))
    for pid in sorted(pids):
        name = "repro" if pid == root_pid else "repro worker %d" % pid
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for span in state.get("spans", ()):
        args = dict(span.get("args") or {})
        args["span_id"] = span.get("id")
        if span.get("parent") is not None:
            args["parent_id"] = span.get("parent")
        events.append(
            {
                "ph": "X",
                "name": str(span["name"]),
                "cat": str(span.get("cat", "repro")),
                "ts": round(float(span["ts"]) * _MICRO, 3),
                "dur": round(float(span.get("dur", 0.0)) * _MICRO, 3),
                "pid": int(span.get("pid", root_pid)),
                "tid": int(span.get("tid", 0)),
                "args": args,
            }
        )
    for ev in state.get("events", ()):
        events.append(
            {
                "ph": "i",
                "name": str(ev.get("kind", "event")),
                "cat": "event",
                "s": "g",
                "ts": round(float(ev.get("ts", 0.0)) * _MICRO, 3),
                "pid": int(ev.get("pid", root_pid)),
                "tid": 0,
                "args": dict(ev.get("details") or {}),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": state.get("trace_id"), "producer": "repro.obs"},
    }


def summarize_histogram(values: List[float]) -> Dict[str, float]:
    """count/min/max/mean/sum plus nearest-rank p50/p90/p99.

    Rank arithmetic lives in :func:`repro.obs.histogram.nearest_rank`,
    the shared primitive also backing the batcher stats and the serving
    telemetry buckets.
    """
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    if count == 0:
        return {"count": 0}
    summary = {
        "count": count,
        "min": ordered[0],
        "max": ordered[-1],
        "sum": sum(ordered),
        "mean": sum(ordered) / count,
    }
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        summary[label] = nearest_rank(ordered, q)
    return summary


def metrics_snapshot(source: Union[core.Recorder, Dict[str, Any]]) -> Dict[str, Any]:
    """Summarise a recorder into one JSON-serialisable metrics document."""
    state = _as_state(source)
    by_category: Dict[str, Dict[str, float]] = {}
    for span in state.get("spans", ()):
        cat = str(span.get("cat", "repro"))
        bucket = by_category.setdefault(cat, {"count": 0, "total_s": 0.0})
        bucket["count"] += 1
        bucket["total_s"] += float(span.get("dur", 0.0))
    event_kinds: Dict[str, int] = {}
    for ev in state.get("events", ()):
        kind = str(ev.get("kind", "event"))
        event_kinds[kind] = event_kinds.get(kind, 0) + 1
    return {
        "schema_version": 1,
        "trace_id": state.get("trace_id"),
        "generated_at": core.wall_time(),
        "counters": dict(state.get("counters", {})),
        "gauges": dict(state.get("gauges", {})),
        "histograms": {
            name: summarize_histogram(values)
            for name, values in state.get("histograms", {}).items()
        },
        "events": [dict(ev) for ev in state.get("events", ())],
        "event_kinds": event_kinds,
        "spans": {
            "count": len(state.get("spans", ())),
            "by_category": by_category,
        },
        "n_hook_calls": int(state.get("n_hook_calls", 0)),
    }


def write_chrome_trace(
    path: Union[str, Path], source: Union[core.Recorder, Dict[str, Any]]
) -> Path:
    """Atomically write the Chrome trace JSON for ``source`` to ``path``."""
    from repro.reliability.atomic import atomic_write_text

    payload = chrome_trace(source)
    return atomic_write_text(Path(path), json.dumps(payload) + "\n")


def write_metrics(
    path: Union[str, Path], source: Union[core.Recorder, Dict[str, Any]]
) -> Path:
    """Atomically write a checksummed metrics snapshot for ``source``."""
    from repro.reliability.atomic import atomic_write_json

    payload = metrics_snapshot(source)
    return atomic_write_json(Path(path), payload, stamp=True)


def load_chrome_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a trace written by :func:`write_chrome_trace`."""
    with open(Path(path), "r") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("%s is not a Chrome trace-event JSON file" % path)
    return payload


@contextmanager
def trace_session(
    trace: Optional[Union[str, Path]] = None,
    metrics: Optional[Union[str, Path]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Iterator[Optional[core.Recorder]]:
    """CLI plumbing: record for the block iff an output path was requested.

    With both paths ``None`` this is a no-op that yields ``None`` —
    observability stays off by default.  Otherwise a fresh recorder is
    installed for the block and the requested artifacts are written
    (crash-safely) on the way out, even if the block raises.
    """
    if trace is None and metrics is None:
        yield None
        return
    with core.recording() as recorder:
        try:
            yield recorder
        finally:
            if trace is not None:
                written = write_chrome_trace(trace, recorder)
                if log is not None:
                    log("trace written to %s (load in https://ui.perfetto.dev)" % written)
            if metrics is not None:
                written = write_metrics(metrics, recorder)
                if log is not None:
                    log("metrics snapshot written to %s" % written)
