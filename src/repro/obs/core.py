"""Near-zero-overhead instrumentation core: spans, metrics, events.

The module keeps one optional global :class:`Recorder`.  While it is
``None`` (the default) every hook — :func:`span`, :func:`incr`,
:func:`gauge`, :func:`observe`, :func:`event` — is a single attribute
load plus an ``is None`` test, so instrumented library code costs
effectively nothing when observability is off.  ``repro-bench run
--trace`` (and friends) call :func:`configure` to install a recorder
for the duration of the run.

Design points:

* **Hierarchical spans** — ``with obs.span("fit.assign", category="fit")``
  context managers maintain a *thread-local* span stack, so nested spans
  are parented correctly even with worker threads recording into the
  same recorder.
* **Injectable monotonic clock** — ``Recorder(clock=...)`` accepts any
  zero-argument float callable; tests fake time and recorded traces
  stay deterministic.  All span timestamps are seconds relative to the
  recorder's epoch (clock value at construction).
* **Structured events** — drift detected, cluster spawned/retired,
  fault injected, retry, rollback, quarantine ... are recorded as typed
  event dicts keyed by the recorder's trace id.
* **Cross-process merge** — a child process started by
  ``ProcessExecutor`` records into its own fresh recorder
  (:func:`begin_child_recording`), exports the state as a plain dict
  (:meth:`Recorder.export_state`) through the executor's result pipe,
  and the parent grafts it under the per-task span with
  :meth:`Recorder.ingest`, remapping span ids and re-basing timestamps.

This module deliberately imports nothing from the rest of ``repro`` so
any layer (core, stream, serving, bench, reliability) can instrument
itself without import cycles.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Recorder",
    "begin_child_recording",
    "configure",
    "disable",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "incr",
    "monotonic",
    "observe",
    "recording",
    "span",
    "suspended",
    "wall_time",
]

Clock = Callable[[], float]


def wall_time() -> float:
    """The wall clock (seconds since the epoch).

    Library code must route wall-clock reads through here instead of
    calling ``time.time()`` directly (``tools/check_obs.py`` enforces
    this), so run manifests and snapshots share one, mockable source.
    """
    return time.time()


def monotonic() -> float:
    """The default monotonic clock used by :class:`Recorder`."""
    return time.perf_counter()


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """An open span; records itself on ``__exit__``."""

    __slots__ = ("_recorder", "name", "category", "args", "span_id", "parent_id", "_start")

    def __init__(self, recorder: "Recorder", name: str, category: str, args: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.category = category
        self.args = args
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach extra key/value annotations to the span."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        recorder = self._recorder
        stack = recorder._span_stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = recorder._next_id()
        stack.append(self.span_id)
        self._start = recorder._now()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        recorder = self._recorder
        end = recorder._now()
        stack = recorder._span_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:  # tolerate mis-nested exits
            stack.remove(self.span_id)
        if exc_type is not None:
            self.args.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        recorder._record_span(
            {
                "id": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "cat": self.category,
                "ts": self._start,
                "dur": max(0.0, end - self._start),
                "pid": recorder.pid,
                "tid": recorder._tid(),
                "args": self.args,
            }
        )
        return False


class Recorder:
    """Collects spans, counters, gauges, histograms and events for one run."""

    def __init__(self, clock: Optional[Clock] = None, trace_id: Optional[str] = None):
        self._clock = clock if clock is not None else monotonic
        self._epoch = self._clock()
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:16]
        self.pid = os.getpid()
        self.spans: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.events: List[Dict[str, Any]] = []
        self.n_hook_calls = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._tids: Dict[int, int] = {}

    # -- internals -----------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _next_id(self) -> int:
        return next(self._ids)

    def _span_stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _tid(self) -> int:
        """Small, stable per-thread id (0 for the first thread seen)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _record_span(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(record)

    # -- recording API -------------------------------------------------

    def span(self, name: str, category: str = "repro", **args: Any) -> _SpanHandle:
        """Open a hierarchical span; use as a context manager."""
        self.n_hook_calls += 1
        return _SpanHandle(self, name, category, args)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        *,
        parent_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> int:
        """Record a span directly from explicit timestamps.

        Used where a context manager does not fit — e.g. the executor's
        per-task spans, which open at launch and close at settle inside
        an event loop rather than a lexical block.  ``start`` is seconds
        relative to the recorder epoch (:meth:`now`).
        """
        self.n_hook_calls += 1
        span_id = self._next_id()
        self._record_span(
            {
                "id": span_id,
                "parent": parent_id,
                "name": name,
                "cat": category,
                "ts": start,
                "dur": max(0.0, duration),
                "pid": self.pid if pid is None else pid,
                "tid": self._tid() if tid is None else tid,
                "args": dict(args or {}),
            }
        )
        return span_id

    def now(self) -> float:
        """Current time in recorder coordinates (seconds since epoch)."""
        return self._now()

    def incr(self, name: str, value: float = 1.0) -> None:
        self.n_hook_calls += 1
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.n_hook_calls += 1
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        self.n_hook_calls += 1
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))

    def event(self, kind: str, /, **details: Any) -> None:
        self.n_hook_calls += 1
        record = {
            "kind": kind,
            "ts": self._now(),
            "pid": self.pid,
            "details": details,
        }
        with self._lock:
            self.events.append(record)

    # -- cross-process merge -------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """A picklable snapshot suitable for :meth:`ingest` in a parent."""
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "pid": self.pid,
                "spans": [dict(span) for span in self.spans],
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {key: list(vals) for key, vals in self.histograms.items()},
                "events": [dict(ev) for ev in self.events],
                "n_hook_calls": self.n_hook_calls,
            }

    def ingest(
        self,
        state: Dict[str, Any],
        *,
        at: float = 0.0,
        parent_span_id: Optional[int] = None,
    ) -> None:
        """Merge a child recorder's exported ``state`` into this one.

        ``at`` re-bases the child's relative timestamps: a child span at
        child-time ``t`` lands at ``at + t`` in this recorder's
        coordinates (callers pass the parent-side launch time of the
        task).  Child span ids are remapped to fresh parent ids so they
        cannot collide; top-level child spans are parented under
        ``parent_span_id`` (usually the executor's per-task span).
        Counters merge additively, histograms concatenate, gauges adopt
        the child's value, events append with re-based timestamps.
        """
        id_map: Dict[int, int] = {}
        remapped: List[Dict[str, Any]] = []
        for span_record in state.get("spans", ()):
            new_id = self._next_id()
            id_map[int(span_record["id"])] = new_id
        for span_record in state.get("spans", ()):
            parent = span_record.get("parent")
            merged = dict(span_record)
            merged["id"] = id_map[int(span_record["id"])]
            merged["parent"] = (
                id_map.get(int(parent)) if parent is not None else parent_span_id
            )
            merged["ts"] = float(span_record["ts"]) + at
            remapped.append(merged)
        with self._lock:
            self.spans.extend(remapped)
            for name, value in state.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + float(value)
            for name, value in state.get("gauges", {}).items():
                self.gauges[name] = float(value)
            for name, values in state.get("histograms", {}).items():
                self.histograms.setdefault(name, []).extend(float(v) for v in values)
            for ev in state.get("events", ()):
                merged_ev = dict(ev)
                merged_ev["ts"] = float(ev.get("ts", 0.0)) + at
                self.events.append(merged_ev)
            self.n_hook_calls += int(state.get("n_hook_calls", 0))


# -- module-level hooks ------------------------------------------------
#
# Instrumented library code calls these.  While `_recorder` is None the
# cost is one global load and one comparison per call site.

_recorder: Optional[Recorder] = None


def configure(clock: Optional[Clock] = None, trace_id: Optional[str] = None) -> Recorder:
    """Install (and return) a fresh global recorder — turns obs on."""
    global _recorder
    _recorder = Recorder(clock=clock, trace_id=trace_id)
    return _recorder


def disable() -> Optional[Recorder]:
    """Turn obs off; returns the recorder that was active, if any."""
    global _recorder
    recorder = _recorder
    _recorder = None
    return recorder


def get_recorder() -> Optional[Recorder]:
    """The active recorder, or ``None`` when observability is off."""
    return _recorder


def enabled() -> bool:
    return _recorder is not None


@contextmanager
def recording(
    clock: Optional[Clock] = None, trace_id: Optional[str] = None
) -> Iterator[Recorder]:
    """Enable a fresh recorder for the block, restoring the previous state."""
    global _recorder
    previous = _recorder
    recorder = configure(clock=clock, trace_id=trace_id)
    try:
        yield recorder
    finally:
        _recorder = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Force-disable recording for the block (used by the overhead bench)."""
    global _recorder
    previous = _recorder
    _recorder = None
    try:
        yield
    finally:
        _recorder = previous


def begin_child_recording(trace_id: Optional[str] = None) -> Recorder:
    """Start a fresh recorder in a worker process.

    After ``fork`` the child inherits the parent's recorder object —
    including every span the parent already collected — so exporting it
    verbatim would duplicate the parent's data.  Workers call this to
    replace the inherited state with an empty recorder whose epoch is
    the child's start; the parent re-bases on ingest.
    """
    return configure(trace_id=trace_id)


def span(name: str, category: str = "repro", **args: Any) -> Any:
    recorder = _recorder
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, category, **args)


def incr(name: str, value: float = 1.0) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.incr(name, value)


def gauge(name: str, value: float) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.gauge(name, value)


def observe(name: str, value: float) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.observe(name, value)


def event(kind: str, /, **details: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.event(kind, **details)
