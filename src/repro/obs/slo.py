"""Service-level objectives: rolling windows, error budgets, burn rates.

A service declares two objectives:

* **availability** — at least ``availability_target`` of requests must
  not fail with a server error (5xx);
* **latency** — at least ``latency_target`` of requests must finish
  within ``latency_budget_ms``.

:class:`SLOTracker` records one ``(ok, latency)`` sample per request
into per-second ring buffers and evaluates both objectives over
rolling 1m/5m/1h windows.  The headline number per window is the
**burn rate**: the ratio of the observed bad fraction to the error
budget (``1 - target``).  Burn 1.0 means the budget is being consumed
exactly as fast as the objective allows; burn 14.4 over an hour-long
budget period means the whole budget would be gone in ~1/14th of the
period.  Following the standard multi-window alerting recipe, the
tracker reports ``fast_burn`` when *both* the 1m and 5m windows burn
above ``fast_burn_threshold`` (the short window proves it is happening
right now, the longer one proves it is not a blip) — the serving
daemon degrades ``/healthz`` on that signal.

Recording is O(1); evaluating a window walks its seconds once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import core

__all__ = ["SLOConfig", "SLOTracker", "WINDOWS"]

#: Rolling evaluation windows: (seconds, label).
WINDOWS = ((60, "1m"), (300, "5m"), (3600, "1h"))


@dataclass(frozen=True)
class SLOConfig:
    """Declared objectives and the alerting threshold."""

    #: Fraction of requests that must not be server errors (5xx).
    availability_target: float = 0.999
    #: Per-request latency budget; slower requests burn the latency SLO.
    latency_budget_ms: float = 250.0
    #: Fraction of requests that must land within ``latency_budget_ms``.
    latency_target: float = 0.99
    #: Burn rate above which (on both 1m and 5m windows) the tracker
    #: reports ``fast_burn``.  14.4 is the classic "2% of a 30-day
    #: budget in one hour" pager threshold.
    fast_burn_threshold: float = 14.4
    #: Windows with fewer requests than this never trip ``fast_burn``
    #: (a single failed request during warm-up is not an incident).
    min_window_requests: int = 10

    def __post_init__(self) -> None:
        for name in ("availability_target", "latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError("%s must be in (0, 1), got %r" % (name, value))
        if self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if self.fast_burn_threshold <= 0:
            raise ValueError("fast_burn_threshold must be positive")


def burn_rate(bad: int, total: int, target: float) -> float:
    """Budget burn rate for a window: bad fraction over error budget."""
    if total <= 0:
        return 0.0
    return (bad / total) / (1.0 - target)


class SLOTracker:
    """Per-second ring buffers evaluating the declared objectives."""

    SLOTS = 3600  # one hour of one-second resolution

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or SLOConfig()
        self._clock = clock or core.monotonic
        self._epoch = self._clock()
        self._last_second = 0
        self._totals = [0] * self.SLOTS
        self._errors = [0] * self.SLOTS
        self._slow = [0] * self.SLOTS

    def _advance(self) -> int:
        """Zero any slots skipped since the last call; return 'now'."""
        now_second = int(self._clock() - self._epoch)
        gap = now_second - self._last_second
        if gap > 0:
            if gap >= self.SLOTS:
                self._totals = [0] * self.SLOTS
                self._errors = [0] * self.SLOTS
                self._slow = [0] * self.SLOTS
            else:
                for second in range(self._last_second + 1, now_second + 1):
                    slot = second % self.SLOTS
                    self._totals[slot] = 0
                    self._errors[slot] = 0
                    self._slow[slot] = 0
            self._last_second = now_second
        return now_second

    def record(self, ok: bool, latency_s: float) -> None:
        """Record one finished request (O(1))."""
        slot = self._advance() % self.SLOTS
        self._totals[slot] += 1
        if not ok:
            self._errors[slot] += 1
        if latency_s * 1e3 > self.config.latency_budget_ms:
            self._slow[slot] += 1

    def window(self, seconds: int) -> Dict[str, float]:
        """Evaluate both objectives over the trailing ``seconds``."""
        now_second = self._advance()
        span = min(int(seconds), self.SLOTS, now_second + 1)
        total = errors = slow = 0
        for second in range(now_second - span + 1, now_second + 1):
            slot = second % self.SLOTS
            total += self._totals[slot]
            errors += self._errors[slot]
            slow += self._slow[slot]
        config = self.config
        return {
            "seconds": span,
            "requests": total,
            "errors": errors,
            "slow": slow,
            "availability": 1.0 - errors / total if total else 1.0,
            "latency_ok": 1.0 - slow / total if total else 1.0,
            "availability_burn": burn_rate(errors, total, config.availability_target),
            "latency_burn": burn_rate(slow, total, config.latency_target),
        }

    def fast_burn(self) -> bool:
        """True when both short windows burn above the threshold."""
        config = self.config
        for seconds in (60, 300):
            window = self.window(seconds)
            if window["requests"] < config.min_window_requests:
                return False
            burn = max(window["availability_burn"], window["latency_burn"])
            if burn <= config.fast_burn_threshold:
                return False
        return True

    def report(self) -> Dict[str, object]:
        """JSON-ready report: objectives, every window, burn status."""
        config = self.config
        fast_burn = self.fast_burn()
        return {
            "objectives": {
                "availability_target": config.availability_target,
                "latency_budget_ms": config.latency_budget_ms,
                "latency_target": config.latency_target,
                "fast_burn_threshold": config.fast_burn_threshold,
            },
            "windows": {
                label: self.window(seconds) for seconds, label in WINDOWS
            },
            "fast_burn": fast_burn,
            "status": "fast_burn" if fast_burn else "ok",
        }
