"""Prometheus text exposition (version 0.0.4) for serving telemetry.

Stdlib-only rendering of the classic text format::

    # HELP repro_requests_total Finished requests by route and status class.
    # TYPE repro_requests_total counter
    repro_requests_total{route="predict",status_class="2xx"} 128

:class:`PromWriter` is a tiny line builder enforcing the format's
grouping rule (all samples of a family follow its ``# HELP``/``# TYPE``
header).  :func:`write_telemetry` emits the telemetry-owned families —
request totals, the per route × status-class latency histogram as a
cumulative ``_bucket`` series, and the SLO burn-rate gauges; the
serving daemon layers its own process/batcher families on top before
rendering.  Bucket counts come straight from
:meth:`~repro.obs.histogram.LogHistogram.cumulative`, so the
exposition's ``_bucket{le="+Inf"}`` always equals ``_count`` and both
always equal the JSON snapshot's totals for the same scrape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.obs.histogram import LogHistogram
from repro.obs.slo import WINDOWS

__all__ = [
    "CONTENT_TYPE",
    "PromWriter",
    "escape_label_value",
    "format_number",
    "write_histogram",
    "write_telemetry",
]

#: Content-Type for the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def format_number(value: float) -> str:
    """Render a sample value or ``le`` bound (``+Inf`` for infinity)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return "%.10g" % value


class PromWriter:
    """Accumulates exposition lines family by family."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        """Open a metric family (``# HELP`` + ``# TYPE`` header)."""
        self._lines.append("# HELP %s %s" % (name, help_text))
        self._lines.append("# TYPE %s %s" % (name, kind))

    def sample(
        self, name: str, labels: Optional[Mapping[str, object]], value: float
    ) -> None:
        """Append one sample line, labels rendered in the given order."""
        if labels:
            rendered = ",".join(
                '%s="%s"' % (key, escape_label_value(val))
                for key, val in labels.items()
            )
            self._lines.append("%s{%s} %s" % (name, rendered, format_number(value)))
        else:
            self._lines.append("%s %s" % (name, format_number(value)))

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def write_histogram(
    writer: PromWriter,
    name: str,
    labels: Mapping[str, object],
    histogram: LogHistogram,
    scale: float = 1.0,
) -> None:
    """Emit one labeled histogram series (``_bucket``/``_sum``/``_count``).

    ``scale`` converts bucket bounds and the sum into exposition units
    (e.g. ``1e-6`` for a histogram recorded in microseconds exposed in
    seconds); bucket *counts* are never scaled.
    """
    for bound, cumulative in histogram.cumulative():
        writer.sample(
            name + "_bucket",
            {**labels, "le": format_number(bound * scale if math.isfinite(bound) else bound)},
            cumulative,
        )
    writer.sample(name + "_sum", labels, histogram.sum * scale)
    writer.sample(name + "_count", labels, histogram.count)


def write_telemetry(writer: PromWriter, telemetry: "object") -> None:
    """Emit the telemetry-owned families into ``writer``.

    ``telemetry`` is a :class:`repro.obs.telemetry.Telemetry`; typed as
    object to keep this module import-light.
    """
    writer.family(
        "repro_requests_total",
        "counter",
        "Finished requests by route and status class.",
    )
    for (route, klass), count in sorted(telemetry.requests_total.items()):
        writer.sample(
            "repro_requests_total",
            {"route": route, "status_class": klass},
            count,
        )

    writer.family(
        "repro_request_latency_seconds",
        "histogram",
        "Request latency by route and status class.",
    )
    for (route, klass), histogram in sorted(telemetry.latency.items()):
        write_histogram(
            writer,
            "repro_request_latency_seconds",
            {"route": route, "status_class": klass},
            histogram,
        )

    writer.family(
        "repro_slo_burn_rate",
        "gauge",
        "Error-budget burn rate per rolling window and objective.",
    )
    window_reports: Dict[str, Mapping[str, float]] = {
        label: telemetry.slo.window(seconds) for seconds, label in WINDOWS
    }
    for label, report in window_reports.items():
        writer.sample(
            "repro_slo_burn_rate",
            {"window": label, "objective": "availability"},
            report["availability_burn"],
        )
        writer.sample(
            "repro_slo_burn_rate",
            {"window": label, "objective": "latency"},
            report["latency_burn"],
        )

    writer.family(
        "repro_slo_fast_burn",
        "gauge",
        "1 while both the 1m and 5m windows burn above the threshold.",
    )
    writer.sample("repro_slo_fast_burn", None, 1.0 if telemetry.slo.fast_burn() else 0.0)
