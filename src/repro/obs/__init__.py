"""``repro.obs`` — spans, metrics and event logs for the whole stack.

Off by default: every hook is a no-op until :func:`configure` (or the
``--trace`` / ``--metrics-out`` CLI flags) installs a recorder.  See
:mod:`repro.obs.core` for the recording model and
:mod:`repro.obs.export` for the Chrome-trace / metrics artifacts.
"""

from repro.obs.core import (
    Recorder,
    begin_child_recording,
    configure,
    disable,
    enabled,
    event,
    gauge,
    get_recorder,
    incr,
    monotonic,
    observe,
    recording,
    span,
    suspended,
    wall_time,
)
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    metrics_snapshot,
    trace_session,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.histogram import LogHistogram, log_bounds, nearest_rank
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.telemetry import RequestTrace, Telemetry

__all__ = [
    "LogHistogram",
    "Recorder",
    "RequestTrace",
    "SLOConfig",
    "SLOTracker",
    "Telemetry",
    "begin_child_recording",
    "chrome_trace",
    "configure",
    "disable",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "incr",
    "load_chrome_trace",
    "log_bounds",
    "metrics_snapshot",
    "monotonic",
    "nearest_rank",
    "observe",
    "recording",
    "span",
    "suspended",
    "trace_session",
    "wall_time",
    "write_chrome_trace",
    "write_metrics",
]
