"""``repro-obs`` — human-readable reports over recorded observability runs.

Subcommands
-----------
``report``
    Summarise a metrics snapshot (``--metrics``) and/or a Chrome trace
    (``--trace``): counters, histogram quantiles, event log, and span
    time by category/name.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.obs.export import load_chrome_trace, summarize_histogram


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return "%.3f s" % value
    return "%.3f ms" % (value * 1e3)


def _report_metrics(path: str, lines: List[str]) -> None:
    from repro.reliability.atomic import read_json

    snapshot = read_json(path)
    lines.append("metrics snapshot: %s (trace %s)" % (path, snapshot.get("trace_id")))
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            rendered = ("%d" % value) if float(value).is_integer() else ("%.4f" % value)
            lines.append("  %-*s %s" % (width, name, rendered))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("\ngauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append("  %-*s %.6g" % (width, name, gauges[name]))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("\nhistograms:")
        lines.append("  %-32s %8s %10s %10s %10s %10s" % ("name", "count", "mean", "p50", "p90", "p99"))
        for name in sorted(histograms):
            summary = histograms[name]
            if not summary.get("count"):
                continue
            lines.append(
                "  %-32s %8d %10.4g %10.4g %10.4g %10.4g"
                % (
                    name,
                    summary["count"],
                    summary.get("mean", 0.0),
                    summary.get("p50", 0.0),
                    summary.get("p90", 0.0),
                    summary.get("p99", 0.0),
                )
            )
    event_kinds = snapshot.get("event_kinds") or {}
    if event_kinds:
        lines.append("\nevents:")
        for kind in sorted(event_kinds):
            lines.append("  %-32s %d" % (kind, event_kinds[kind]))
    spans = snapshot.get("spans") or {}
    by_category = spans.get("by_category") or {}
    if by_category:
        lines.append("\nspan time by category (%d spans):" % spans.get("count", 0))
        for cat in sorted(by_category):
            bucket = by_category[cat]
            lines.append(
                "  %-16s %6d spans  %s"
                % (cat, bucket.get("count", 0), _format_seconds(bucket.get("total_s", 0.0)))
            )


def _report_trace(path: str, lines: List[str]) -> None:
    payload = load_chrome_trace(path)
    events = payload.get("traceEvents") or []
    spans = [ev for ev in events if ev.get("ph") == "X"]
    instants = [ev for ev in events if ev.get("ph") == "i"]
    other = payload.get("otherData") or {}
    lines.append(
        "trace: %s (trace %s) — %d spans, %d events"
        % (path, other.get("trace_id"), len(spans), len(instants))
    )
    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        key = "%s/%s" % (span.get("cat", "repro"), span.get("name", "?"))
        bucket = by_name.setdefault(key, {"durs": []})
        bucket["durs"].append(float(span.get("dur", 0.0)) / 1e6)
    if by_name:
        lines.append("\nspan durations by name:")
        lines.append("  %-44s %7s %12s %12s %12s" % ("cat/name", "count", "total", "mean", "p99"))
        ranked = sorted(by_name.items(), key=lambda item: -sum(item[1]["durs"]))
        for key, bucket in ranked:
            summary = summarize_histogram(bucket["durs"])
            lines.append(
                "  %-44s %7d %12s %12s %12s"
                % (
                    key,
                    summary["count"],
                    _format_seconds(summary["sum"]),
                    _format_seconds(summary["mean"]),
                    _format_seconds(summary["p99"]),
                )
            )
    if instants:
        lines.append("\ninstant events:")
        kinds: Dict[str, int] = {}
        for ev in instants:
            kinds[str(ev.get("name", "event"))] = kinds.get(str(ev.get("name", "event")), 0) + 1
        for kind in sorted(kinds):
            lines.append("  %-32s %d" % (kind, kinds[kind]))
    lines.append("\nopen in Perfetto: https://ui.perfetto.dev → 'Open trace file' → %s" % path)


def _cmd_report(args: argparse.Namespace) -> int:
    lines: List[str] = []
    if args.metrics:
        _report_metrics(args.metrics, lines)
    if args.trace:
        if lines:
            lines.append("")
        _report_trace(args.trace, lines)
    print("\n".join(lines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect traces and metrics recorded by --trace/--metrics-out.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser("report", help="summarise a recorded run")
    report.add_argument("--metrics", default=None,
                        help="metrics snapshot JSON written by --metrics-out")
    report.add_argument("--trace", default=None,
                        help="Chrome trace JSON written by --trace")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "report" and not (args.metrics or args.trace):
        parser.error("report needs --metrics and/or --trace")
    try:
        return args.func(args)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
