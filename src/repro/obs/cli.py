"""``repro-obs`` — human-readable reports over recorded observability runs.

Subcommands
-----------
``report``
    Summarise a metrics snapshot (``--metrics``), a Chrome trace
    (``--trace``), and/or a live serving daemon (``--url``): counters,
    histogram quantiles, event log, span time by category/name, and —
    for a live daemon — per-route latency and SLO burn rates.
``tail``
    Fetch a running daemon's tail-latency capture (the slowest and
    errored requests with their full span trees) as a Chrome trace,
    summarise it, and optionally save it for Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.export import load_chrome_trace, summarize_histogram


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return "%.3f s" % value
    return "%.3f ms" % (value * 1e3)


def _report_metrics(path: str, lines: List[str]) -> None:
    from repro.reliability.atomic import read_json

    snapshot = read_json(path)
    lines.append("metrics snapshot: %s (trace %s)" % (path, snapshot.get("trace_id")))
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            rendered = ("%d" % value) if float(value).is_integer() else ("%.4f" % value)
            lines.append("  %-*s %s" % (width, name, rendered))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("\ngauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append("  %-*s %.6g" % (width, name, gauges[name]))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("\nhistograms:")
        lines.append("  %-32s %8s %10s %10s %10s %10s" % ("name", "count", "mean", "p50", "p90", "p99"))
        for name in sorted(histograms):
            summary = histograms[name]
            if not summary.get("count"):
                continue
            lines.append(
                "  %-32s %8d %10.4g %10.4g %10.4g %10.4g"
                % (
                    name,
                    summary["count"],
                    summary.get("mean", 0.0),
                    summary.get("p50", 0.0),
                    summary.get("p90", 0.0),
                    summary.get("p99", 0.0),
                )
            )
    event_kinds = snapshot.get("event_kinds") or {}
    if event_kinds:
        lines.append("\nevents:")
        for kind in sorted(event_kinds):
            lines.append("  %-32s %d" % (kind, event_kinds[kind]))
    spans = snapshot.get("spans") or {}
    by_category = spans.get("by_category") or {}
    if by_category:
        lines.append("\nspan time by category (%d spans):" % spans.get("count", 0))
        for cat in sorted(by_category):
            bucket = by_category[cat]
            lines.append(
                "  %-16s %6d spans  %s"
                % (cat, bucket.get("count", 0), _format_seconds(bucket.get("total_s", 0.0)))
            )


def _report_trace(path: str, lines: List[str]) -> None:
    _summarize_trace(load_chrome_trace(path), path, lines)


def _summarize_trace(payload: Dict[str, Any], source: str, lines: List[str]) -> None:
    events = payload.get("traceEvents") or []
    spans = [ev for ev in events if ev.get("ph") == "X"]
    instants = [ev for ev in events if ev.get("ph") == "i"]
    other = payload.get("otherData") or {}
    lines.append(
        "trace: %s (trace %s) — %d spans, %d events"
        % (source, other.get("trace_id"), len(spans), len(instants))
    )
    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        key = "%s/%s" % (span.get("cat", "repro"), span.get("name", "?"))
        bucket = by_name.setdefault(key, {"durs": []})
        bucket["durs"].append(float(span.get("dur", 0.0)) / 1e6)
    if by_name:
        lines.append("\nspan durations by name:")
        lines.append("  %-44s %7s %12s %12s %12s" % ("cat/name", "count", "total", "mean", "p99"))
        ranked = sorted(by_name.items(), key=lambda item: -sum(item[1]["durs"]))
        for key, bucket in ranked:
            summary = summarize_histogram(bucket["durs"])
            lines.append(
                "  %-44s %7d %12s %12s %12s"
                % (
                    key,
                    summary["count"],
                    _format_seconds(summary["sum"]),
                    _format_seconds(summary["mean"]),
                    _format_seconds(summary["p99"]),
                )
            )
    if instants:
        lines.append("\ninstant events:")
        kinds: Dict[str, int] = {}
        for ev in instants:
            kinds[str(ev.get("name", "event"))] = kinds.get(str(ev.get("name", "event")), 0) + 1
        for kind in sorted(kinds):
            lines.append("  %-32s %d" % (kind, kinds[kind]))
    lines.append("\nopen in Perfetto: https://ui.perfetto.dev → 'Open trace file' → %s" % source)


def _fetch_json(url: str, timeout: float = 15.0) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _report_server(url: str, lines: List[str]) -> None:
    """Render a live daemon's `/metrics` telemetry: latency, SLO, burn."""
    base = url.rstrip("/")
    payload = _fetch_json(base + "/metrics")
    telemetry = payload.get("telemetry") or {}
    lines.append("server: %s (generation %s)" % (base, payload.get("generation")))
    latency = telemetry.get("latency_seconds") or {}
    if latency:
        lines.append("\nlatency by route × status class:")
        lines.append(
            "  %-28s %8s %12s %12s %12s" % ("route status", "count", "mean", "p50", "p99")
        )
        for route in sorted(latency):
            for klass in sorted(latency[route]):
                summary = latency[route][klass]
                if not summary.get("count"):
                    continue
                lines.append(
                    "  %-28s %8d %12s %12s %12s"
                    % (
                        "%s %s" % (route, klass),
                        summary["count"],
                        _format_seconds(summary.get("mean", 0.0)),
                        _format_seconds(summary.get("p50", 0.0)),
                        _format_seconds(summary.get("p99", 0.0)),
                    )
                )
    slo = telemetry.get("slo") or {}
    objectives = slo.get("objectives") or {}
    windows = slo.get("windows") or {}
    if windows:
        lines.append(
            "\nSLO (availability ≥ %s, %s%% ≤ %s ms) — status: %s"
            % (
                objectives.get("availability_target"),
                100.0 * float(objectives.get("latency_target", 0.0)),
                objectives.get("latency_budget_ms"),
                slo.get("status", "?"),
            )
        )
        lines.append(
            "  %-6s %10s %8s %8s %18s %14s"
            % ("window", "requests", "errors", "slow", "availability_burn", "latency_burn")
        )
        for label in ("1m", "5m", "1h"):
            window = windows.get(label)
            if not window:
                continue
            lines.append(
                "  %-6s %10d %8d %8d %18.3f %14.3f"
                % (
                    label,
                    window.get("requests", 0),
                    window.get("errors", 0),
                    window.get("slow", 0),
                    window.get("availability_burn", 0.0),
                    window.get("latency_burn", 0.0),
                )
            )


def _cmd_report(args: argparse.Namespace) -> int:
    lines: List[str] = []
    if args.metrics:
        _report_metrics(args.metrics, lines)
    if args.trace:
        if lines:
            lines.append("")
        _report_trace(args.trace, lines)
    if args.url:
        if lines:
            lines.append("")
        _report_server(args.url, lines)
    print("\n".join(lines))
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    payload = _fetch_json(base + "/debug/tail_trace")
    source = base + "/debug/tail_trace"
    if args.out:
        from repro.reliability.atomic import atomic_write_text

        atomic_write_text(args.out, json.dumps(payload))
        source = args.out
    lines: List[str] = []
    _summarize_trace(payload, source, lines)
    print("\n".join(lines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect traces and metrics recorded by --trace/--metrics-out.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser("report", help="summarise a recorded run")
    report.add_argument("--metrics", default=None,
                        help="metrics snapshot JSON written by --metrics-out")
    report.add_argument("--trace", default=None,
                        help="Chrome trace JSON written by --trace")
    report.add_argument("--url", default=None,
                        help="base URL of a live repro-server daemon "
                             "(renders its /metrics telemetry and SLO burn rates)")
    report.set_defaults(func=_cmd_report)
    tail = subparsers.add_parser(
        "tail", help="dump a live daemon's tail-latency Chrome trace"
    )
    tail.add_argument("--url", required=True,
                      help="base URL of a live repro-server daemon")
    tail.add_argument("--out", default=None,
                      help="write the Chrome trace JSON here (Perfetto-loadable)")
    tail.set_defaults(func=_cmd_tail)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "report" and not (args.metrics or args.trace or args.url):
        parser.error("report needs --metrics, --trace and/or --url")
    try:
        return args.func(args)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
