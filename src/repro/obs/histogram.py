"""The one histogram/percentile primitive shared by every layer.

Before this module existed the repository had three independent
percentile implementations: ``server/batcher.py`` kept bounded rings
of raw batch sizes and queue waits and ran an ad-hoc nearest-rank
helper over them, ``obs/export.py`` re-implemented the same rank
arithmetic for recorder histograms, and the serving telemetry layer
needed fixed-boundary buckets for Prometheus exposition.  All three
now sit on this file:

* :func:`nearest_rank` — the exact nearest-rank percentile over a raw
  sample, for call sites that retain every observation.
* :class:`LogHistogram` — a fixed-boundary, log-bucketed histogram for
  always-on aggregation: O(#buckets) memory no matter how many
  observations arrive, exact ``count``/``sum``/``min``/``max``,
  interpolated quantiles, mergeable, and directly exposable as a
  Prometheus cumulative ``_bucket`` series.

Boundaries are fixed at construction (``log_bounds`` builds geometric
grids) so histograms recorded by different processes, or scraped at
different times, are always mergeable and comparable bucket by bucket
— the property Prometheus cumulative series rely on.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

__all__ = ["LogHistogram", "log_bounds", "nearest_rank"]


def nearest_rank(values: Sequence[float], fraction: float) -> float:
    """Exact nearest-rank percentile of a non-empty sample.

    ``fraction`` is in ``[0, 1]``; ``nearest_rank(xs, 0.99)`` is the
    smallest element with at least 99% of the sample at or below it.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1], got %r" % (fraction,))
    ordered = sorted(float(value) for value in values)
    if not ordered:
        raise ValueError("nearest_rank of an empty sample")
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


def log_bounds(lo: float, hi: float, per_decade: int = 5) -> Tuple[float, ...]:
    """Geometric bucket upper bounds covering ``[lo, hi]``.

    Returns an ascending tuple whose first element is ``lo`` and whose
    last element is ``>= hi``, with ``per_decade`` bounds per factor of
    ten.  Bounds are rounded to 4 significant digits so exposition
    labels stay readable and stable across platforms.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi, got lo=%r hi=%r" % (lo, hi))
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n_steps = int(math.ceil(per_decade * math.log10(hi / lo)))
    bounds: List[float] = []
    for step in range(n_steps + 1):
        bound = float("%.4g" % (lo * 10.0 ** (step / per_decade)))
        if not bounds or bound > bounds[-1]:
            bounds.append(bound)
    return tuple(bounds)


class LogHistogram:
    """Fixed-boundary bucketed histogram with exact count/sum/min/max.

    ``bounds`` are ascending bucket *upper* bounds; an observation
    ``v`` lands in the first bucket whose bound is ``>= v`` (Prometheus
    ``le`` semantics).  One extra overflow bucket (``le="+Inf"``)
    catches everything above the last bound.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]):
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(nxt <= prev for nxt, prev in zip(ordered[1:], ordered)):
            raise ValueError("bounds must be non-empty and strictly ascending")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``math.inf`` last.

        The final pair's count always equals :attr:`count` — the
        invariant Prometheus requires of ``_bucket{le="+Inf"}``.
        """
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self.bucket_counts[-1]))
        return pairs

    def quantile(self, fraction: float) -> float:
        """Estimated quantile, linearly interpolated within its bucket.

        Exact ``min``/``max`` clamp the estimate, so single-observation
        histograms report that observation for every quantile and the
        overflow bucket never invents values beyond the observed max.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1], got %r" % (fraction,))
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = max(1, math.ceil(fraction * self.count))
        running = 0
        for index, count in enumerate(self.bucket_counts):
            if count == 0:
                continue
            if running + count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                estimate = lower + (upper - lower) * ((rank - running) / count)
                return min(max(estimate, self.min), self.max)
            running += count
        return self.max

    def snapshot(self) -> Dict[str, float]:
        """Summary dict (``count``/``sum``/``mean``/``min``/``max``/pXX)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }
