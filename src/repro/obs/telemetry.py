"""Request-scoped serving telemetry: ids, traces, aggregates, tails.

This is the layer between the serving daemon and the generic
:mod:`repro.obs` machinery.  One :class:`Telemetry` instance lives on
the server and is **always on** (unlike the opt-in global recorder):

* **Request identity** — every request gets an id (inbound
  ``X-Request-Id`` honored, otherwise generated) and a
  :class:`RequestTrace` that decomposes its lifetime into phases
  (queue wait, kernel, serialization) and links it to the micro-batch
  flush that served it.
* **Always-on aggregation** — per route × status-class latency
  :class:`~repro.obs.histogram.LogHistogram` s and request totals,
  cheap enough for the hot path (one bucket increment per request)
  and exposable as JSON or Prometheus cumulative series.
* **SLO tracking** — every finished request feeds an
  :class:`~repro.obs.slo.SLOTracker` (availability + latency budget,
  rolling windows, burn rates).
* **Tail capture** — the slowest-N requests per rolling window and
  every errored request keep their full traces; together with the
  retained flush records (including worker-side recorder state shipped
  over the pool pipe) they reconstruct linked
  request → flush → worker-kernel Chrome traces on demand.

All methods are event-loop-thread only; nothing here takes locks.
Timestamps live on the telemetry's own timeline (seconds since
construction); :meth:`Telemetry.to_timeline` converts absolute
``obs.monotonic()`` readings taken elsewhere in the server.
"""

from __future__ import annotations

import heapq
import itertools
import uuid
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs import core
from repro.obs.export import chrome_trace
from repro.obs.histogram import LogHistogram, log_bounds
from repro.obs.slo import SLOConfig, SLOTracker

__all__ = [
    "LATENCY_BOUNDS_S",
    "RequestTrace",
    "Telemetry",
    "status_class",
]

#: Fixed latency bucket bounds: 100µs .. 60s, 5 buckets per decade.
LATENCY_BOUNDS_S = log_bounds(1e-4, 60.0, per_decade=5)


def status_class(status: int) -> str:
    """``200 -> "2xx"`` — the label aggregation keys on."""
    return "%dxx" % max(1, min(5, int(status) // 100))


class RequestTrace:
    """One request's identity, phase decomposition, and batch link."""

    __slots__ = (
        "request_id",
        "method",
        "route",
        "start",
        "duration_s",
        "status",
        "error",
        "phases",
        "batch_id",
        "batch_size",
        "flush_reason",
        "queue_wait_us",
        "kernel_s",
    )

    def __init__(self, request_id: str, method: str, route: str, start: float):
        self.request_id = request_id
        self.method = method
        self.route = route
        self.start = start
        self.duration_s = 0.0
        self.status = 0
        self.error: Optional[str] = None
        self.phases: List[Tuple[str, float, float, Dict[str, object]]] = []
        self.batch_id: Optional[int] = None
        self.batch_size: Optional[int] = None
        self.flush_reason: Optional[str] = None
        self.queue_wait_us: Optional[float] = None
        self.kernel_s: Optional[float] = None

    def add_phase(
        self, name: str, start: float, duration_s: float, **args: object
    ) -> None:
        """Record a sub-phase (timeline coordinates) of this request."""
        self.phases.append((name, start, max(0.0, duration_s), dict(args)))

    def link_batch(self, ticket: Dict[str, object], submitted_at: float) -> None:
        """Adopt the flush attribution the batcher wrote into ``ticket``.

        ``submitted_at`` is the timeline instant the request entered the
        batcher queue; together with the measured queue wait and kernel
        time it yields the queue-wait and kernel phases.
        """
        if "batch_id" not in ticket:
            return
        self.batch_id = int(ticket["batch_id"])
        self.batch_size = int(ticket["batch_size"])
        self.flush_reason = str(ticket["flush_reason"])
        self.queue_wait_us = float(ticket["queue_wait_us"])
        self.kernel_s = float(ticket["kernel_s"])
        wait_s = self.queue_wait_us / 1e6
        self.add_phase("server.queue_wait", submitted_at, wait_s)
        self.add_phase(
            "server.kernel",
            submitted_at + wait_s,
            self.kernel_s,
            batch_id=self.batch_id,
            batch_size=self.batch_size,
        )

    def span_args(self) -> Dict[str, object]:
        """Args for this request's top-level Chrome span."""
        args: Dict[str, object] = {
            "request_id": self.request_id,
            "method": self.method,
            "route": self.route,
            "status": self.status,
        }
        if self.error is not None:
            args["error"] = self.error
        if self.batch_id is not None:
            args.update(
                batch_id=self.batch_id,
                batch_size=self.batch_size,
                flush_reason=self.flush_reason,
                queue_wait_us=self.queue_wait_us,
                kernel_s=self.kernel_s,
            )
        return args


class _TailCapture:
    """Slowest-N per rolling window plus every errored request."""

    def __init__(self, slow_n: int, error_n: int, window_s: float):
        self.slow_n = max(1, int(slow_n))
        self.window_s = max(1e-3, float(window_s))
        self._seq = itertools.count()
        # window index -> min-heap of (duration, seq, trace); only the
        # current and previous windows are retained.
        self._windows: "OrderedDict[int, List[Tuple[float, int, RequestTrace]]]" = (
            OrderedDict()
        )
        self._errors: Deque[RequestTrace] = deque(maxlen=max(1, int(error_n)))

    def consider(self, trace: RequestTrace, now: float) -> None:
        if trace.status >= 400 or trace.error is not None:
            self._errors.append(trace)
        window = int(now / self.window_s)
        heap = self._windows.get(window)
        if heap is None:
            heap = self._windows[window] = []
            while len(self._windows) > 2:
                self._windows.popitem(last=False)
        entry = (trace.duration_s, next(self._seq), trace)
        if len(heap) < self.slow_n:
            heapq.heappush(heap, entry)
        elif entry[0] > heap[0][0]:
            heapq.heapreplace(heap, entry)

    def entries(self) -> List[RequestTrace]:
        """Captured traces, deduplicated, in start order."""
        seen: Dict[int, RequestTrace] = {}
        for trace in self._errors:
            seen[id(trace)] = trace
        for heap in self._windows.values():
            for _, _, trace in heap:
                seen[id(trace)] = trace
        return sorted(seen.values(), key=lambda trace: trace.start)

    def counts(self) -> Dict[str, int]:
        return {
            "captured_slow": sum(len(heap) for heap in self._windows.values()),
            "captured_errors": len(self._errors),
            "slow_capacity": self.slow_n,
            "error_capacity": int(self._errors.maxlen or 0),
        }


class Telemetry:
    """Always-on serving telemetry (see module docstring)."""

    def __init__(
        self,
        slo: Optional[SLOConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        trace_prefix: Optional[str] = None,
        tail_slow: int = 32,
        tail_errors: int = 64,
        tail_window_s: float = 60.0,
        flush_capacity: int = 512,
    ):
        self._clock = clock if clock is not None else core.monotonic
        self._epoch = self._clock()
        self.trace_prefix = trace_prefix or uuid.uuid4().hex[:8]
        self._request_ids = itertools.count(1)
        self.slo = SLOTracker(slo or SLOConfig(), clock=self._clock)
        self.requests_total: Dict[Tuple[str, str], int] = {}
        self.latency: Dict[Tuple[str, str], LogHistogram] = {}
        self._tail = _TailCapture(tail_slow, tail_errors, tail_window_s)
        self._flush_capacity = max(1, int(flush_capacity))
        self._flushes: "OrderedDict[int, Dict[str, object]]" = OrderedDict()

    # -- time and identity ---------------------------------------------

    def now(self) -> float:
        """Current time on the telemetry timeline (seconds)."""
        return self._clock() - self._epoch

    def to_timeline(self, absolute: float) -> float:
        """Convert an absolute clock reading to timeline coordinates."""
        return absolute - self._epoch

    def next_request_id(self) -> str:
        """Generate a request id for a request that brought none."""
        return "%s-%08x" % (self.trace_prefix, next(self._request_ids))

    # -- request lifecycle ---------------------------------------------

    def begin_request(self, method: str, route: str, request_id: str) -> RequestTrace:
        return RequestTrace(request_id, method, route, self.now())

    def finish_request(
        self, trace: RequestTrace, status: int, error: Optional[str] = None
    ) -> None:
        """Close a request: aggregate, feed the SLO, maybe keep the tail."""
        now = self.now()
        trace.duration_s = max(0.0, now - trace.start)
        trace.status = int(status)
        if error is not None:
            trace.error = error
        key = (trace.route, status_class(trace.status))
        self.requests_total[key] = self.requests_total.get(key, 0) + 1
        histogram = self.latency.get(key)
        if histogram is None:
            histogram = self.latency[key] = LogHistogram(LATENCY_BOUNDS_S)
        histogram.observe(trace.duration_s)
        # Availability counts server errors only; a 4xx is the client's
        # fault and still consumed the latency budget.
        self.slo.record(ok=trace.status < 500, latency_s=trace.duration_s)
        self._tail.consider(trace, now)

    # -- batch flush linkage -------------------------------------------

    def observe_flush(
        self,
        batch_id: int,
        reason: str,
        size: int,
        start: float,
        duration_s: float,
        worker_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Retain one micro-batch flush for later trace assembly.

        ``start`` is an absolute clock reading (the flush's kernel call
        time); ``worker_state`` is the worker-side recorder export that
        rode back over the pool pipe, if the backend produced one.
        """
        self._flushes[int(batch_id)] = {
            "batch_id": int(batch_id),
            "reason": str(reason),
            "size": int(size),
            "start": self.to_timeline(start),
            "duration_s": max(0.0, float(duration_s)),
            "worker_state": worker_state,
        }
        while len(self._flushes) > self._flush_capacity:
            self._flushes.popitem(last=False)

    # -- exports --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready aggregate state (served under ``/metrics``)."""
        totals: Dict[str, Dict[str, int]] = {}
        for (route, klass), count in sorted(self.requests_total.items()):
            totals.setdefault(route, {})[klass] = count
        latency: Dict[str, Dict[str, object]] = {}
        for (route, klass), histogram in sorted(self.latency.items()):
            summary = dict(histogram.snapshot())
            cumulative = histogram.cumulative()
            summary["buckets"] = {
                "le": [bound for bound, _ in cumulative[:-1]] + ["+Inf"],
                "cumulative": [count for _, count in cumulative],
            }
            latency.setdefault(route, {})[klass] = summary
        return {
            "requests_total": totals,
            "latency_seconds": latency,
            "slo": self.slo.report(),
            "tail": {**self._tail.counts(), "flushes_retained": len(self._flushes)},
        }

    def tail_trace(self) -> Dict[str, object]:
        """Chrome trace of every captured tail request.

        Each request becomes a ``server.request`` span with its phase
        children; if its flush record is still retained, a
        ``server.flush`` child is attached and the worker-side recorder
        state is ingested under it (ids remapped, timestamps re-based),
        every span stamped with the request id.  A flush serving
        several captured requests is duplicated per request so each
        trace tree is self-contained.
        """
        recorder = core.Recorder(clock=lambda: 0.0, trace_id="tail")
        for trace in self._tail.entries():
            request_span = recorder.add_span(
                "server.request",
                "server",
                trace.start,
                trace.duration_s,
                args=trace.span_args(),
            )
            for name, start, duration_s, args in trace.phases:
                recorder.add_span(
                    name,
                    "server",
                    start,
                    duration_s,
                    parent_id=request_span,
                    args={**args, "request_id": trace.request_id},
                )
            flush = (
                self._flushes.get(trace.batch_id)
                if trace.batch_id is not None
                else None
            )
            if flush is None:
                continue
            flush_span = recorder.add_span(
                "server.flush",
                "server",
                float(flush["start"]),
                float(flush["duration_s"]),
                parent_id=request_span,
                args={
                    "request_id": trace.request_id,
                    "batch_id": flush["batch_id"],
                    "reason": flush["reason"],
                    "size": flush["size"],
                },
            )
            worker_state = flush.get("worker_state")
            if worker_state:
                stamped = dict(worker_state)
                stamped["spans"] = [
                    {
                        **span,
                        "args": {
                            **span.get("args", {}),
                            "request_id": trace.request_id,
                        },
                    }
                    for span in worker_state.get("spans", ())
                ]
                recorder.ingest(
                    stamped, at=float(flush["start"]), parent_span_id=flush_span
                )
        return chrome_trace(recorder)
