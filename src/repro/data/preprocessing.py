"""Column-wise preprocessing helpers.

The SSPC objective compares per-cluster column variances against the
global column variance, so it is scale-equivariant and needs no
preprocessing on the synthetic data.  Real datasets, however, often mix
measurement scales; these helpers provide the two standard options
(z-score standardisation and min-max normalisation) in a form that also
returns the fitted statistics so new objects can be transformed
consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_array_2d


@dataclass
class ColumnScaler:
    """Fitted per-column affine transform ``(x - shift) / scale``."""

    shift: np.ndarray
    scale: np.ndarray

    def transform(self, data) -> np.ndarray:
        """Apply the fitted transform to new data."""
        data = check_array_2d(data, name="data")
        if data.shape[1] != self.shift.shape[0]:
            raise ValueError(
                "data has %d columns but the scaler was fitted on %d"
                % (data.shape[1], self.shift.shape[0])
            )
        return (data - self.shift) / self.scale

    def inverse_transform(self, data) -> np.ndarray:
        """Undo the transform."""
        data = check_array_2d(data, name="data")
        return data * self.scale + self.shift


def standardize(data) -> Tuple[np.ndarray, ColumnScaler]:
    """Z-score standardise every column (constant columns map to 0)."""
    data = check_array_2d(data, name="data")
    mean = data.mean(axis=0)
    std = data.std(axis=0, ddof=0)
    safe_std = np.where(std > 0, std, 1.0)
    scaler = ColumnScaler(shift=mean, scale=safe_std)
    return scaler.transform(data), scaler


def min_max_normalize(data, *, feature_range: Tuple[float, float] = (0.0, 1.0)) -> Tuple[np.ndarray, ColumnScaler]:
    """Scale every column to ``feature_range`` (constant columns map to the low end)."""
    low, high = feature_range
    if not high > low:
        raise ValueError("feature_range must satisfy high > low")
    data = check_array_2d(data, name="data")
    col_min = data.min(axis=0)
    col_max = data.max(axis=0)
    span = col_max - col_min
    safe_span = np.where(span > 0, span, 1.0)
    # Compose the [0,1] scaling with the requested range into one affine map.
    scale = safe_span / (high - low)
    shift = col_min - low * scale
    scaler = ColumnScaler(shift=shift, scale=scale)
    return scaler.transform(data), scaler
