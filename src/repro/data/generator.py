"""Synthetic projected-cluster generator implementing the paper's data model.

Section 3 of the paper defines the model: a dataset ``D`` of ``n``
objects and ``d`` dimensions is partitioned into ``k`` clusters plus a
possibly empty outlier set.  For every dimension ``v_j`` relevant to a
cluster ``C_i``, the projection of the cluster members onto ``v_j`` is a
random sample of a *local* Gaussian with small variance, while all other
projected values on ``v_j`` come from a *global* population with much
larger variance.  The experiments (Section 5) instantiate the global
population as a uniform distribution and draw the local standard
deviations from 1%-10% of the global value range.

:class:`SyntheticDataGenerator` reproduces this construction with the
parameters used in the paper's experiments exposed as arguments:

* dataset shape ``n``, ``d``, ``k``,
* average cluster dimensionality ``l_real`` (either identical for every
  cluster or varied around the average),
* global distribution (uniform or Gaussian),
* local standard deviation range as a fraction of the global range,
* outlier fraction,
* cluster-size balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
)

GLOBAL_DISTRIBUTIONS = ("uniform", "gaussian")


@dataclass
class SyntheticDataset:
    """A generated dataset together with its ground truth.

    Attributes
    ----------
    data:
        The ``(n, d)`` data matrix.
    labels:
        Ground-truth membership labels; ``-1`` marks generated outliers.
    relevant_dimensions:
        Per-cluster lists of relevant dimension indices (class label is
        the list position).
    local_means, local_stds:
        Per-cluster dictionaries mapping relevant dimension index to the
        mean / standard deviation of its local Gaussian, kept for tests
        and diagnostics.
    parameters:
        Echo of the generator parameters used.
    """

    data: np.ndarray
    labels: np.ndarray
    relevant_dimensions: List[np.ndarray]
    local_means: List[Dict[int, float]] = field(default_factory=list)
    local_stds: List[Dict[int, float]] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def n_objects(self) -> int:
        """Number of objects (rows)."""
        return int(self.data.shape[0])

    @property
    def n_dimensions(self) -> int:
        """Number of dimensions (columns)."""
        return int(self.data.shape[1])

    @property
    def n_clusters(self) -> int:
        """Number of generated clusters."""
        return len(self.relevant_dimensions)

    @property
    def n_outliers(self) -> int:
        """Number of generated outliers."""
        return int(np.count_nonzero(self.labels == -1))

    def cluster_members(self, label: int) -> np.ndarray:
        """Indices of the members of cluster ``label``."""
        return np.flatnonzero(self.labels == label)

    def average_dimensionality(self) -> float:
        """Mean number of relevant dimensions per cluster."""
        if not self.relevant_dimensions:
            return 0.0
        return float(np.mean([dims.size for dims in self.relevant_dimensions]))


@dataclass
class SyntheticDataGenerator:
    """Configurable generator for projected-cluster datasets.

    Parameters
    ----------
    n_objects, n_dimensions, n_clusters:
        Dataset shape (``n``, ``d``, ``k``).
    avg_cluster_dimensionality:
        The paper's ``l_real`` — average number of relevant dimensions
        per cluster.
    dimensionality_spread:
        Maximum deviation of a cluster's dimensionality from the
        average (0 keeps every cluster at exactly ``l_real``).
    global_distribution:
        ``"uniform"`` (the paper's choice) or ``"gaussian"``.
    value_range:
        ``(low, high)`` range of the uniform global population; for the
        Gaussian global population the mean is the mid-point and the
        standard deviation one sixth of the range.
    local_std_fraction:
        ``(low, high)`` bounds on the local standard deviation expressed
        as a fraction of the global value range (paper: 1%-10%).
    outlier_fraction:
        Fraction of objects generated as outliers (all-global rows).
    balanced:
        When ``True`` all clusters have (as close as possible) the same
        size; otherwise sizes are drawn from a Dirichlet distribution
        with a lower bound of 2 objects per cluster.
    shared_dimension_probability:
        Probability that a relevant dimension of one cluster is reused as
        a relevant dimension of another cluster (0 keeps the per-cluster
        relevant sets sampled independently, which still allows chance
        overlap as in the paper).
    random_state:
        Seed or generator controlling the whole construction.
    """

    n_objects: int = 1000
    n_dimensions: int = 100
    n_clusters: int = 5
    avg_cluster_dimensionality: int = 10
    dimensionality_spread: int = 0
    global_distribution: str = "uniform"
    value_range: Tuple[float, float] = (0.0, 100.0)
    local_std_fraction: Tuple[float, float] = (0.01, 0.10)
    outlier_fraction: float = 0.0
    balanced: bool = True
    shared_dimension_probability: float = 0.0
    random_state: RandomState = None

    def __post_init__(self) -> None:
        self.n_objects = check_positive_int(self.n_objects, name="n_objects", minimum=2)
        self.n_dimensions = check_positive_int(self.n_dimensions, name="n_dimensions", minimum=1)
        self.n_clusters = check_positive_int(self.n_clusters, name="n_clusters", minimum=1)
        self.avg_cluster_dimensionality = check_positive_int(
            self.avg_cluster_dimensionality, name="avg_cluster_dimensionality", minimum=1
        )
        if self.avg_cluster_dimensionality > self.n_dimensions:
            raise ValueError(
                "avg_cluster_dimensionality (%d) cannot exceed n_dimensions (%d)"
                % (self.avg_cluster_dimensionality, self.n_dimensions)
            )
        if self.dimensionality_spread < 0:
            raise ValueError("dimensionality_spread must be non-negative")
        if self.global_distribution not in GLOBAL_DISTRIBUTIONS:
            raise ValueError(
                "global_distribution must be one of %s" % (GLOBAL_DISTRIBUTIONS,)
            )
        low, high = self.value_range
        if not (high > low):
            raise ValueError("value_range must satisfy high > low")
        frac_low, frac_high = self.local_std_fraction
        check_fraction(frac_low, name="local_std_fraction[0]", inclusive_low=False)
        check_fraction(frac_high, name="local_std_fraction[1]", inclusive_low=False)
        if frac_high < frac_low:
            raise ValueError("local_std_fraction must be (low, high) with low <= high")
        self.outlier_fraction = check_fraction(self.outlier_fraction, name="outlier_fraction")
        self.shared_dimension_probability = check_fraction(
            self.shared_dimension_probability, name="shared_dimension_probability"
        )
        n_clustered = self.n_objects - int(round(self.outlier_fraction * self.n_objects))
        if n_clustered < 2 * self.n_clusters:
            raise ValueError(
                "not enough non-outlier objects (%d) for %d clusters of at least 2 objects"
                % (n_clustered, self.n_clusters)
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self, random_state: RandomState = None) -> SyntheticDataset:
        """Generate one dataset.

        ``random_state`` overrides the generator's own ``random_state``
        when supplied, which lets the experiment harness draw repeated
        datasets from independent streams.
        """
        rng = ensure_rng(random_state if random_state is not None else self.random_state)

        sizes = self._cluster_sizes(rng)
        n_outliers = self.n_objects - int(sizes.sum())
        relevant = self._relevant_dimensions(rng)
        local_means, local_stds = self._local_populations(relevant, rng)

        data = self._global_background(rng)
        labels = np.full(self.n_objects, -1, dtype=int)

        # Assign contiguous blocks then shuffle rows so object order never
        # leaks the cluster structure to the algorithms.
        cursor = 0
        for cluster_index, size in enumerate(sizes):
            members = np.arange(cursor, cursor + size)
            cursor += size
            labels[members] = cluster_index
            for dim in relevant[cluster_index]:
                mean = local_means[cluster_index][int(dim)]
                std = local_stds[cluster_index][int(dim)]
                data[members, dim] = rng.normal(mean, std, size=members.size)
        # Rows [cursor, n) remain all-global: these are the outliers.

        permutation = rng.permutation(self.n_objects)
        data = data[permutation]
        labels = labels[permutation]

        return SyntheticDataset(
            data=data,
            labels=labels,
            relevant_dimensions=[dims.copy() for dims in relevant],
            local_means=local_means,
            local_stds=local_stds,
            parameters={
                "n_objects": self.n_objects,
                "n_dimensions": self.n_dimensions,
                "n_clusters": self.n_clusters,
                "avg_cluster_dimensionality": self.avg_cluster_dimensionality,
                "dimensionality_spread": self.dimensionality_spread,
                "global_distribution": self.global_distribution,
                "value_range": tuple(self.value_range),
                "local_std_fraction": tuple(self.local_std_fraction),
                "outlier_fraction": self.outlier_fraction,
                "balanced": self.balanced,
                "n_outliers": n_outliers,
            },
        )

    # ------------------------------------------------------------------ #
    # construction pieces
    # ------------------------------------------------------------------ #
    def _cluster_sizes(self, rng: np.random.Generator) -> np.ndarray:
        """Distribute the non-outlier objects over the ``k`` clusters."""
        n_outliers = int(round(self.outlier_fraction * self.n_objects))
        n_clustered = self.n_objects - n_outliers
        if self.balanced:
            base = n_clustered // self.n_clusters
            sizes = np.full(self.n_clusters, base, dtype=int)
            sizes[: n_clustered - base * self.n_clusters] += 1
        else:
            proportions = rng.dirichlet(np.full(self.n_clusters, 2.0))
            sizes = np.maximum((proportions * n_clustered).astype(int), 2)
            # Fix rounding drift while keeping every cluster at >= 2 objects.
            while sizes.sum() > n_clustered:
                candidates = np.flatnonzero(sizes > 2)
                sizes[rng.choice(candidates)] -= 1
            while sizes.sum() < n_clustered:
                sizes[rng.integers(self.n_clusters)] += 1
        return sizes

    def _relevant_dimensions(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Draw each cluster's relevant dimension set."""
        relevant: List[np.ndarray] = []
        spread = min(self.dimensionality_spread, self.avg_cluster_dimensionality - 1)
        for cluster_index in range(self.n_clusters):
            if spread:
                count = int(rng.integers(
                    self.avg_cluster_dimensionality - spread,
                    self.avg_cluster_dimensionality + spread + 1,
                ))
            else:
                count = self.avg_cluster_dimensionality
            count = int(np.clip(count, 1, self.n_dimensions))
            dims: set = set()
            if self.shared_dimension_probability > 0.0 and relevant:
                pool = np.concatenate(relevant)
                for dim in pool:
                    if len(dims) >= count:
                        break
                    if rng.random() < self.shared_dimension_probability:
                        dims.add(int(dim))
            while len(dims) < count:
                dims.add(int(rng.integers(self.n_dimensions)))
            relevant.append(np.asarray(sorted(dims), dtype=int))
        return relevant

    def _local_populations(
        self,
        relevant: List[np.ndarray],
        rng: np.random.Generator,
    ) -> Tuple[List[Dict[int, float]], List[Dict[int, float]]]:
        """Draw the mean / std of every local Gaussian population."""
        low, high = self.value_range
        value_span = high - low
        frac_low, frac_high = self.local_std_fraction
        means: List[Dict[int, float]] = []
        stds: List[Dict[int, float]] = []
        for dims in relevant:
            cluster_means: Dict[int, float] = {}
            cluster_stds: Dict[int, float] = {}
            for dim in dims:
                std = float(rng.uniform(frac_low, frac_high) * value_span)
                # Keep the local population comfortably inside the global range
                # so relevant dimensions are not trivially detectable from the
                # range alone.
                margin = min(2.0 * std, 0.45 * value_span)
                mean = float(rng.uniform(low + margin, high - margin))
                cluster_means[int(dim)] = mean
                cluster_stds[int(dim)] = std
            means.append(cluster_means)
            stds.append(cluster_stds)
        return means, stds

    def _global_background(self, rng: np.random.Generator) -> np.ndarray:
        """Fill the whole matrix with draws from the global population."""
        low, high = self.value_range
        if self.global_distribution == "uniform":
            return rng.uniform(low, high, size=(self.n_objects, self.n_dimensions))
        mean = 0.5 * (low + high)
        std = (high - low) / 6.0
        return rng.normal(mean, std, size=(self.n_objects, self.n_dimensions))


def make_projected_clusters(
    n_objects: int = 1000,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    avg_cluster_dimensionality: int = 10,
    *,
    dimensionality_spread: int = 0,
    global_distribution: str = "uniform",
    value_range: Tuple[float, float] = (0.0, 100.0),
    local_std_fraction: Tuple[float, float] = (0.01, 0.10),
    outlier_fraction: float = 0.0,
    balanced: bool = True,
    shared_dimension_probability: float = 0.0,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Functional shortcut around :class:`SyntheticDataGenerator`.

    Mirrors the generator's constructor arguments; see its docstring.
    """
    generator = SyntheticDataGenerator(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=avg_cluster_dimensionality,
        dimensionality_spread=dimensionality_spread,
        global_distribution=global_distribution,
        value_range=value_range,
        local_std_fraction=local_std_fraction,
        outlier_fraction=outlier_fraction,
        balanced=balanced,
        shared_dimension_probability=shared_dimension_probability,
        random_state=random_state,
    )
    return generator.generate()
