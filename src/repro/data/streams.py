"""Drift-capable stream generators for the streaming subsystem.

The paper's data model (Section 3, :mod:`repro.data.generator`) is
static: every cluster's local Gaussian populations are drawn once and
the whole dataset is sampled from them.  Streaming workloads violate
exactly that assumption — the cluster structure *drifts* while the
system is serving traffic.  :class:`DriftingStreamGenerator` extends the
paper's generative model along the time axis: an unbounded sequence of
micro-batches is drawn from the same uniform-background /
local-Gaussian construction, but a declarative *event schedule* mutates
the generating populations at declared batch indices:

* :class:`MeanShift` — concept shift: a cluster's local means move by a
  fraction of the global value range (the cluster is still "the same"
  entity, in a new location);
* :class:`DimensionDrift` — a cluster trades some of its relevant
  dimensions for fresh ones (the projected subspace itself rotates);
* :class:`ClusterBirth` — a brand-new cluster (new stable id) starts
  emitting points;
* :class:`ClusterDeath` — a cluster stops emitting points.

Determinism and resumability: every batch is generated from an RNG
seeded by ``(seed, batch_index)`` and the event timeline is resolved
eagerly at construction from ``(seed, event_position)``, so batch ``i``
has identical content no matter in which order — or in which process —
batches are drawn.  A checkpointed stream consumer can therefore resume
mid-stream by regenerating batches from its recorded position, the same
way :mod:`repro.bench`'s store resumes interrupted runs.

Ground-truth labels use *stable cluster ids*: ids are never reused
after a death and a birth always takes the next fresh id, so accuracy
can be tracked across lifecycle events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "MeanShift",
    "DimensionDrift",
    "ClusterBirth",
    "ClusterDeath",
    "DriftEvent",
    "StreamBatch",
    "DriftingStreamGenerator",
    "make_drift_schedule",
]


# ---------------------------------------------------------------------- #
# event schedule
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MeanShift:
    """Concept shift: move ``cluster``'s local means at batch ``batch``.

    Every relevant dimension's mean moves by ``magnitude`` times the
    global value range, in a per-dimension random direction (the new
    mean is kept inside the background range so the cluster stays
    non-trivial to detect).
    """

    batch: int
    cluster: int
    magnitude: float = 0.25


@dataclass(frozen=True)
class DimensionDrift:
    """Subspace drift: ``cluster`` swaps ``n_dimensions`` relevant dims."""

    batch: int
    cluster: int
    n_dimensions: int = 2


@dataclass(frozen=True)
class ClusterBirth:
    """A new cluster (fresh stable id) starts emitting at batch ``batch``."""

    batch: int
    dimensionality: Optional[int] = None


@dataclass(frozen=True)
class ClusterDeath:
    """``cluster`` stops emitting points from batch ``batch`` on."""

    batch: int
    cluster: int


DriftEvent = Union[MeanShift, DimensionDrift, ClusterBirth, ClusterDeath]


@dataclass
class StreamBatch:
    """One micro-batch of the stream plus its ground truth.

    Attributes
    ----------
    index:
        Position of the batch in the stream (0-based).
    data:
        The ``(batch_size, d)`` point block.
    labels:
        Ground-truth stable cluster ids (``-1`` marks background/outlier
        rows).
    active_clusters:
        Stable ids of the clusters emitting points in this batch.
    events:
        The schedule events that became effective *at* this batch index.
    """

    index: int
    data: np.ndarray
    labels: np.ndarray
    active_clusters: Tuple[int, ...] = ()
    events: Tuple[DriftEvent, ...] = ()


@dataclass
class _ClusterPopulation:
    """Generating populations of one stream cluster (mutable over time)."""

    cluster_id: int
    dimensions: np.ndarray
    means: Dict[int, float]
    stds: Dict[int, float]
    alive: bool = True

    def copy(self) -> "_ClusterPopulation":
        return _ClusterPopulation(
            cluster_id=self.cluster_id,
            dimensions=self.dimensions.copy(),
            means=dict(self.means),
            stds=dict(self.stds),
            alive=self.alive,
        )


@dataclass
class DriftingStreamGenerator:
    """Unbounded micro-batch stream over a drifting projected-cluster model.

    Parameters
    ----------
    n_dimensions, n_clusters, avg_cluster_dimensionality:
        Shape of the initial (pre-drift) population, mirroring
        :class:`~repro.data.generator.SyntheticDataGenerator`.
    value_range, local_std_fraction:
        The paper's global-population range and local-spread bounds.
    outlier_fraction:
        Fraction of each batch drawn entirely from the background.
    events:
        The drift schedule; events apply in ``(batch, position)`` order.
    random_state:
        Integer seed of the whole stream (batches and the event
        timeline both derive from it deterministically).
    """

    n_dimensions: int = 60
    n_clusters: int = 4
    avg_cluster_dimensionality: int = 8
    value_range: Tuple[float, float] = (0.0, 100.0)
    local_std_fraction: Tuple[float, float] = (0.01, 0.10)
    outlier_fraction: float = 0.05
    events: Sequence[DriftEvent] = field(default_factory=tuple)
    random_state: int = 0

    def __post_init__(self) -> None:
        self.n_dimensions = check_positive_int(self.n_dimensions, name="n_dimensions", minimum=1)
        self.n_clusters = check_positive_int(self.n_clusters, name="n_clusters", minimum=1)
        self.avg_cluster_dimensionality = check_positive_int(
            self.avg_cluster_dimensionality, name="avg_cluster_dimensionality", minimum=1
        )
        if self.avg_cluster_dimensionality > self.n_dimensions:
            raise ValueError(
                "avg_cluster_dimensionality (%d) cannot exceed n_dimensions (%d)"
                % (self.avg_cluster_dimensionality, self.n_dimensions)
            )
        low, high = self.value_range
        if not (high > low):
            raise ValueError("value_range must satisfy high > low")
        self.outlier_fraction = check_fraction(self.outlier_fraction, name="outlier_fraction")
        self.events = tuple(sorted(self.events, key=lambda event: int(event.batch)))
        for event in self.events:
            if int(event.batch) < 0:
                raise ValueError("event batches must be non-negative")
        self._timeline = self._resolve_timeline()

    # ------------------------------------------------------------------ #
    # population timeline
    # ------------------------------------------------------------------ #
    def _draw_population(
        self,
        cluster_id: int,
        rng: np.random.Generator,
        *,
        dimensionality: Optional[int] = None,
        exclude: Sequence[int] = (),
    ) -> _ClusterPopulation:
        """Fresh local populations for one cluster (paper Section 3)."""
        count = int(dimensionality or self.avg_cluster_dimensionality)
        count = int(np.clip(count, 1, self.n_dimensions))
        pool = np.setdiff1d(np.arange(self.n_dimensions), np.asarray(exclude, dtype=int))
        if pool.size < count:
            pool = np.arange(self.n_dimensions)
        dims = np.sort(rng.choice(pool, size=count, replace=False))
        means: Dict[int, float] = {}
        stds: Dict[int, float] = {}
        for dim in dims:
            means[int(dim)], stds[int(dim)] = self._draw_local(rng)
        return _ClusterPopulation(cluster_id=cluster_id, dimensions=dims, means=means, stds=stds)

    def _draw_local(self, rng: np.random.Generator) -> Tuple[float, float]:
        """One local Gaussian (mean, std) inside the global range."""
        low, high = self.value_range
        span = high - low
        frac_low, frac_high = self.local_std_fraction
        std = float(rng.uniform(frac_low, frac_high) * span)
        margin = min(2.0 * std, 0.45 * span)
        mean = float(rng.uniform(low + margin, high - margin))
        return mean, std

    def _apply_event(
        self,
        populations: List[_ClusterPopulation],
        event: DriftEvent,
        rng: np.random.Generator,
        next_id: int,
    ) -> int:
        """Mutate ``populations`` in place; returns the updated next id."""
        by_id = {population.cluster_id: population for population in populations}
        if isinstance(event, ClusterBirth):
            populations.append(
                self._draw_population(next_id, rng, dimensionality=event.dimensionality)
            )
            return next_id + 1
        target = by_id.get(int(event.cluster))
        if target is None or not target.alive:
            raise ValueError(
                "event %r names cluster %d which is not alive at batch %d"
                % (type(event).__name__, int(event.cluster), int(event.batch))
            )
        if isinstance(event, ClusterDeath):
            target.alive = False
        elif isinstance(event, MeanShift):
            low, high = self.value_range
            span = high - low
            for dim in target.dimensions:
                direction = 1.0 if rng.random() < 0.5 else -1.0
                moved = target.means[int(dim)] + direction * event.magnitude * span
                margin = min(2.0 * target.stds[int(dim)], 0.45 * span)
                target.means[int(dim)] = float(np.clip(moved, low + margin, high - margin))
        elif isinstance(event, DimensionDrift):
            n_swap = int(np.clip(event.n_dimensions, 1, target.dimensions.size))
            dropped = rng.choice(target.dimensions, size=n_swap, replace=False)
            kept = np.setdiff1d(target.dimensions, dropped)
            pool = np.setdiff1d(np.arange(self.n_dimensions), target.dimensions)
            if pool.size < n_swap:
                pool = np.setdiff1d(np.arange(self.n_dimensions), kept)
            added = rng.choice(pool, size=n_swap, replace=False)
            for dim in dropped:
                target.means.pop(int(dim), None)
                target.stds.pop(int(dim), None)
            for dim in added:
                target.means[int(dim)], target.stds[int(dim)] = self._draw_local(rng)
            target.dimensions = np.sort(np.concatenate([kept, np.asarray(added, dtype=int)]))
        else:
            raise TypeError("unknown drift event %r" % (event,))
        return next_id

    def _resolve_timeline(self) -> List[Tuple[int, List[_ClusterPopulation]]]:
        """States ``[(first_batch, populations), ...]`` in batch order.

        The initial populations derive from ``(seed, "init")`` and each
        event's randomness from ``(seed, "event", position)``, so the
        timeline is a pure function of the constructor arguments — batch
        generation never advances these streams.
        """
        rng = np.random.default_rng([int(self.random_state), 0xA11CE])
        populations = [self._draw_population(cluster_id, rng) for cluster_id in range(self.n_clusters)]
        next_id = self.n_clusters
        timeline = [(0, [population.copy() for population in populations])]
        for position, event in enumerate(self.events):
            event_rng = np.random.default_rng([int(self.random_state), 0xE7E27, position])
            next_id = self._apply_event(populations, event, event_rng, next_id)
            batch = int(event.batch)
            if timeline[-1][0] == batch:
                timeline[-1] = (batch, [population.copy() for population in populations])
            else:
                timeline.append((batch, [population.copy() for population in populations]))
        return timeline

    def _populations_at(self, batch_index: int) -> List[_ClusterPopulation]:
        state = self._timeline[0][1]
        for first_batch, populations in self._timeline:
            if first_batch > batch_index:
                break
            state = populations
        return state

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def active_cluster_ids(self, batch_index: int) -> Tuple[int, ...]:
        """Stable ids of the clusters emitting points at ``batch_index``."""
        return tuple(
            population.cluster_id
            for population in self._populations_at(batch_index)
            if population.alive
        )

    def relevant_dimensions(self, batch_index: int) -> Dict[int, np.ndarray]:
        """Stable id -> relevant dimension indices at ``batch_index``."""
        return {
            population.cluster_id: population.dimensions.copy()
            for population in self._populations_at(batch_index)
            if population.alive
        }

    def events_at(self, batch_index: int) -> Tuple[DriftEvent, ...]:
        """Schedule events that become effective exactly at ``batch_index``."""
        return tuple(event for event in self.events if int(event.batch) == int(batch_index))

    def batch(self, batch_index: int, batch_size: int) -> StreamBatch:
        """Generate batch ``batch_index`` (independent of any other batch)."""
        if batch_index < 0:
            raise ValueError("batch_index must be non-negative")
        batch_size = check_positive_int(batch_size, name="batch_size", minimum=1)
        rng = np.random.default_rng([int(self.random_state), 1, int(batch_index)])
        populations = [
            population for population in self._populations_at(batch_index) if population.alive
        ]
        data, labels = self._sample(populations, batch_size, rng)
        return StreamBatch(
            index=int(batch_index),
            data=data,
            labels=labels,
            active_clusters=tuple(population.cluster_id for population in populations),
            events=self.events_at(batch_index),
        )

    def batches(self, n_batches: int, batch_size: int, *, start: int = 0):
        """Iterate ``n_batches`` consecutive batches from ``start``."""
        for offset in range(int(n_batches)):
            yield self.batch(start + offset, batch_size)

    def warmup(self, n_points: int) -> StreamBatch:
        """A pre-stream training block drawn from the initial populations.

        Uses its own RNG branch (``(seed, 2)``), so the warmup never
        collides with any stream batch; intended for fitting the initial
        model before the stream starts.
        """
        n_points = check_positive_int(n_points, name="n_points", minimum=2)
        rng = np.random.default_rng([int(self.random_state), 2])
        populations = [
            population for population in self._timeline[0][1] if population.alive
        ]
        data, labels = self._sample(populations, n_points, rng)
        return StreamBatch(
            index=-1,
            data=data,
            labels=labels,
            active_clusters=tuple(population.cluster_id for population in populations),
        )

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(
        self,
        populations: List[_ClusterPopulation],
        n_points: int,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        low, high = self.value_range
        data = rng.uniform(low, high, size=(n_points, self.n_dimensions))
        labels = np.full(n_points, -1, dtype=int)
        if populations:
            n_outliers = int(round(self.outlier_fraction * n_points))
            n_clustered = n_points - n_outliers
            base = n_clustered // len(populations)
            sizes = np.full(len(populations), base, dtype=int)
            sizes[: n_clustered - base * len(populations)] += 1
            cursor = 0
            for population, size in zip(populations, sizes):
                members = np.arange(cursor, cursor + size)
                cursor += size
                labels[members] = population.cluster_id
                for dim in population.dimensions:
                    data[members, dim] = rng.normal(
                        population.means[int(dim)],
                        population.stds[int(dim)],
                        size=members.size,
                    )
        permutation = rng.permutation(n_points)
        return data[permutation], labels[permutation]


def make_drift_schedule(
    kind: str,
    *,
    drift_batch: int,
    cluster: int = 0,
    magnitude: float = 0.3,
    n_dimensions: int = 2,
) -> Tuple[DriftEvent, ...]:
    """Preset schedules for the CLI and the bench scenarios.

    ``kind`` is one of ``"none"``, ``"mean_shift"``, ``"dimension_drift"``,
    ``"birth"``, ``"death"`` or ``"mixed"`` (a mean shift plus a birth at
    ``drift_batch`` and a death of ``cluster`` + 1 one batch later).
    """
    if kind == "none":
        return ()
    if kind == "mean_shift":
        return (MeanShift(batch=drift_batch, cluster=cluster, magnitude=magnitude),)
    if kind == "dimension_drift":
        return (DimensionDrift(batch=drift_batch, cluster=cluster, n_dimensions=n_dimensions),)
    if kind == "birth":
        return (ClusterBirth(batch=drift_batch),)
    if kind == "death":
        return (ClusterDeath(batch=drift_batch, cluster=cluster),)
    if kind == "mixed":
        return (
            MeanShift(batch=drift_batch, cluster=cluster, magnitude=magnitude),
            ClusterBirth(batch=drift_batch),
            ClusterDeath(batch=drift_batch + 1, cluster=cluster + 1),
        )
    raise ValueError(
        "unknown drift schedule %r (expected none, mean_shift, dimension_drift, "
        "birth, death or mixed)" % (kind,)
    )
