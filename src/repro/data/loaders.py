"""Dataset persistence and example-dataset builders.

The examples load/store datasets as plain CSV so a downstream user can
swap in their own data (e.g. a real gene-expression matrix) without extra
dependencies.  ``make_expression_like_dataset`` builds a synthetic matrix
whose shape and signal structure mimic the microarray scenario the paper
motivates (few samples, thousands of genes, a handful of marker genes per
sample class).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.data.generator import SyntheticDataset, make_projected_clusters
from repro.utils.rng import RandomState
from repro.utils.validation import check_array_2d, check_membership_labels

PathLike = Union[str, Path]


def save_csv_dataset(
    path: PathLike,
    data,
    labels=None,
    *,
    delimiter: str = ",",
    float_format: str = "%.6g",
) -> None:
    """Persist a data matrix (and optional labels) to a CSV file.

    The first row is a header (``dim_0 .. dim_{d-1}[,label]``); each
    subsequent row is one object.  When ``labels`` is supplied it is
    appended as the last column.
    """
    data = check_array_2d(data, name="data")
    if labels is not None:
        labels = check_membership_labels(labels, data.shape[0])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        header = ["dim_%d" % j for j in range(data.shape[1])]
        if labels is not None:
            header.append("label")
        writer.writerow(header)
        for row_index in range(data.shape[0]):
            row = [float_format % value for value in data[row_index]]
            if labels is not None:
                row.append(str(int(labels[row_index])))
            writer.writerow(row)


def load_csv_dataset(
    path: PathLike,
    *,
    delimiter: str = ",",
    has_header: bool = True,
    label_column: Optional[str] = "label",
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Load a CSV dataset written by :func:`save_csv_dataset`.

    Returns ``(data, labels)``; ``labels`` is ``None`` when the file has
    no label column.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError("dataset file %s is empty" % path)

    label_index: Optional[int] = None
    if has_header:
        header = rows[0]
        rows = rows[1:]
        if label_column is not None and label_column in header:
            label_index = header.index(label_column)
    if not rows:
        raise ValueError("dataset file %s contains a header but no data rows" % path)

    data_rows: List[List[float]] = []
    labels: List[int] = []
    for row in rows:
        if label_index is not None:
            labels.append(int(float(row[label_index])))
            values = [value for position, value in enumerate(row) if position != label_index]
        else:
            values = row
        data_rows.append([float(value) for value in values])
    data = np.asarray(data_rows, dtype=float)
    label_array = np.asarray(labels, dtype=int) if label_index is not None else None
    return data, label_array


def make_expression_like_dataset(
    n_samples: int = 150,
    n_genes: int = 3000,
    n_sample_classes: int = 5,
    n_marker_genes: int = 30,
    *,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Synthetic matrix shaped like the microarray scenario of the paper.

    ``n_samples`` objects (tissue samples) described by ``n_genes``
    dimensions, with each of the ``n_sample_classes`` classes carrying
    ``n_marker_genes`` marker genes — i.e. relevant dimensions — whose
    expression is tightly distributed within the class.  This matches the
    configuration the paper uses in Section 5.3 (n=150, d=3000, k=5,
    l_real=30, 1% of the dimensions relevant).

    Returns
    -------
    SyntheticDataset
        With ``data`` of shape ``(n_samples, n_genes)``.
    """
    return make_projected_clusters(
        n_objects=n_samples,
        n_dimensions=n_genes,
        n_clusters=n_sample_classes,
        avg_cluster_dimensionality=n_marker_genes,
        global_distribution="uniform",
        value_range=(0.0, 100.0),
        local_std_fraction=(0.01, 0.10),
        random_state=random_state,
    )
