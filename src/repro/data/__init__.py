"""Synthetic data generation, loading and preprocessing.

The paper's evaluation is entirely synthetic: datasets follow the data
model of Section 3 (uniform global populations, narrow Gaussian local
populations along each cluster's relevant dimensions), with parameters
chosen per experiment.  This package provides:

* :class:`SyntheticDataGenerator` / :func:`make_projected_clusters` —
  the Section 3 data model with configurable global distribution, local
  variance range, cluster-size balance and outliers.
* :func:`make_multigroup_dataset` — the Section 5.4 construction where
  two independent groupings are concatenated dimension-wise.
* :class:`DriftingStreamGenerator` — the streaming extension of the
  Section 3 model: an unbounded micro-batch stream whose generating
  populations drift under a declarative event schedule (concept shift,
  cluster birth/death, dimension drift).
* Expression-like dataset builders and simple CSV persistence used by the
  examples.
* Column standardisation / normalisation helpers.
"""

from repro.data.generator import (
    SyntheticDataGenerator,
    SyntheticDataset,
    make_projected_clusters,
)
from repro.data.multigroup import MultiGroupingDataset, make_multigroup_dataset
from repro.data.loaders import (
    load_csv_dataset,
    make_expression_like_dataset,
    save_csv_dataset,
)
from repro.data.preprocessing import min_max_normalize, standardize
from repro.data.streams import (
    ClusterBirth,
    ClusterDeath,
    DimensionDrift,
    DriftingStreamGenerator,
    MeanShift,
    StreamBatch,
    make_drift_schedule,
)

__all__ = [
    "ClusterBirth",
    "ClusterDeath",
    "DimensionDrift",
    "DriftingStreamGenerator",
    "MeanShift",
    "StreamBatch",
    "make_drift_schedule",
    "SyntheticDataGenerator",
    "SyntheticDataset",
    "make_projected_clusters",
    "MultiGroupingDataset",
    "make_multigroup_dataset",
    "load_csv_dataset",
    "save_csv_dataset",
    "make_expression_like_dataset",
    "min_max_normalize",
    "standardize",
]
