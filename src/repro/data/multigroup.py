"""Datasets with multiple possible groupings (Section 5.4).

The paper constructs a dataset where the same objects admit two
independent, equally valid clusterings: two datasets with n=150, d=1500,
k=5 and l_real=30 are generated with independent cluster memberships and
relevant dimensions, and then concatenated dimension-wise to give a
3000-dimensional dataset.  Evaluating a clustering against grouping 1 or
grouping 2 then answers which underlying structure was recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.data.generator import SyntheticDataGenerator, SyntheticDataset
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class MultiGroupingDataset:
    """A dataset admitting several independent ground-truth groupings.

    Attributes
    ----------
    data:
        The combined ``(n, d_total)`` matrix.
    groupings:
        Per-grouping membership label vectors (all of length ``n``).
    relevant_dimensions:
        Per-grouping, per-cluster relevant dimension indices *in the
        combined dimension space*.
    parameters:
        Echo of generation parameters.
    """

    data: np.ndarray
    groupings: List[np.ndarray]
    relevant_dimensions: List[List[np.ndarray]]
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return int(self.data.shape[0])

    @property
    def n_dimensions(self) -> int:
        """Total number of dimensions after concatenation."""
        return int(self.data.shape[1])

    @property
    def n_groupings(self) -> int:
        """Number of alternative ground-truth groupings."""
        return len(self.groupings)

    def grouping_labels(self, grouping: int) -> np.ndarray:
        """Membership labels of one grouping."""
        return self.groupings[grouping]

    def grouping_dimensions(self, grouping: int) -> List[np.ndarray]:
        """Per-cluster relevant dimensions of one grouping (combined space)."""
        return self.relevant_dimensions[grouping]


def make_multigroup_dataset(
    n_objects: int = 150,
    n_dimensions_per_grouping: int = 1500,
    n_clusters: int = 5,
    avg_cluster_dimensionality: int = 30,
    *,
    n_groupings: int = 2,
    global_distribution: str = "uniform",
    value_range: Tuple[float, float] = (0.0, 100.0),
    local_std_fraction: Tuple[float, float] = (0.01, 0.10),
    random_state: RandomState = None,
) -> MultiGroupingDataset:
    """Build the Section 5.4 multiple-groupings dataset.

    Each grouping is generated independently on its own block of
    ``n_dimensions_per_grouping`` dimensions; the blocks are concatenated
    so every object carries the signals of all groupings at once.  The
    default parameters reproduce the paper's configuration (two groupings
    of 1500 dimensions each, 30 relevant dimensions per cluster, i.e. 1%
    of the combined 3000 dimensions).

    Returns
    -------
    MultiGroupingDataset
    """
    if n_groupings < 2:
        raise ValueError("a multi-grouping dataset needs at least 2 groupings")
    rng = ensure_rng(random_state)

    blocks: List[np.ndarray] = []
    groupings: List[np.ndarray] = []
    relevant: List[List[np.ndarray]] = []
    for grouping_index in range(n_groupings):
        generator = SyntheticDataGenerator(
            n_objects=n_objects,
            n_dimensions=n_dimensions_per_grouping,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=avg_cluster_dimensionality,
            global_distribution=global_distribution,
            value_range=value_range,
            local_std_fraction=local_std_fraction,
            outlier_fraction=0.0,
            balanced=True,
        )
        dataset: SyntheticDataset = generator.generate(random_state=rng)
        offset = grouping_index * n_dimensions_per_grouping
        blocks.append(dataset.data)
        groupings.append(dataset.labels)
        relevant.append([dims + offset for dims in dataset.relevant_dimensions])

    return MultiGroupingDataset(
        data=np.concatenate(blocks, axis=1),
        groupings=groupings,
        relevant_dimensions=relevant,
        parameters={
            "n_objects": n_objects,
            "n_dimensions_per_grouping": n_dimensions_per_grouping,
            "n_clusters": n_clusters,
            "avg_cluster_dimensionality": avg_cluster_dimensionality,
            "n_groupings": n_groupings,
            "global_distribution": global_distribution,
        },
    )
