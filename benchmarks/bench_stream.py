"""Thin wrapper: the streaming benchmark lives in the library.

The measurement core is :mod:`repro.bench.perf_stream`, shared with the
``repro-bench`` orchestrator (scenario ``stream``).  Run either::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario stream
"""

from __future__ import annotations

import sys

from repro.bench.perf_stream import main

if __name__ == "__main__":
    sys.exit(main())
