"""Thin wrapper: the hot-path micro-benchmark now lives in the library.

The measurement core moved to :mod:`repro.bench.perf_hotpath` so the
``repro-bench`` orchestrator (scenario ``hotpath``) and this script share
one implementation.  Run either::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario hotpath
"""

from __future__ import annotations

import sys

from repro.bench.perf_hotpath import main

if __name__ == "__main__":
    sys.exit(main())
