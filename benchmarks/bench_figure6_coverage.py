"""Benchmark / reproduction of Figure 6 (experiment E7): accuracy vs coverage.

The input size is fixed (6 in the paper) and the fraction of clusters
receiving knowledge sweeps from 0 to 1.  The paper observes a general
accuracy increase with coverage and near-peak performance already at 60%
coverage thanks to the max-min mechanism for the uncovered clusters.
Thin wrapper over the registered ``figure6_coverage`` scenario.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure6_coverage")


def test_figure6_coverage(benchmark, bench_scale):
    """Regenerate the Figure 6 accuracy-vs-coverage curves."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Figure 6: median ARI vs knowledge coverage (input size = 6) ===")
    print(summary.table)

    # General trend: more coverage does not hurt, and full coverage beats
    # none, for every category.
    assert summary.metrics["coverage_gain_min"] > 0.05
    # Partial coverage already recovers a large share of the benefit (the
    # paper reaches its peak at 60% coverage thanks to the max-min
    # mechanism): at >= 60% coverage at least half of the none-to-full
    # improvement is realised.
    assert summary.metrics["partial_recovery_margin"] >= -0.05
