"""Benchmark / reproduction of Figure 6 (experiment E7): accuracy vs coverage.

The input size is fixed (6 in the paper) and the fraction of clusters
receiving knowledge sweeps from 0 to 1.  The paper observes a general
accuracy increase with coverage and near-peak performance already at 60%
coverage thanks to the max-min mechanism for the uncovered clusters.
"""

from __future__ import annotations

from repro.data.generator import make_projected_clusters
from repro.experiments.harness import format_series_table
from repro.experiments.knowledge_input import run_coverage_experiment


def _run(paper_scale: bool):
    if paper_scale:
        dataset = make_projected_clusters(
            n_objects=150, n_dimensions=3000, n_clusters=5,
            avg_cluster_dimensionality=30, random_state=11,
        )
        return run_coverage_experiment(
            coverages=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
            dataset=dataset,
            input_size=6,
            n_knowledge_draws=10,
            random_state=11,
        )
    dataset = make_projected_clusters(
        n_objects=150, n_dimensions=800, n_clusters=5,
        avg_cluster_dimensionality=8, random_state=11,
    )
    return run_coverage_experiment(
        coverages=(0.0, 0.4, 0.6, 1.0),
        categories=("dimensions", "both"),
        dataset=dataset,
        input_size=6,
        n_knowledge_draws=3,
        random_state=11,
    )


def test_figure6_coverage(benchmark, paper_scale):
    """Regenerate the Figure 6 accuracy-vs-coverage curves."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Figure 6: median ARI vs knowledge coverage (input size = 6) ===")
    categories = sorted({row.configuration["category"] for row in rows})
    for category in categories:
        subset = [row for row in rows if row.configuration["category"] == category]
        print("-- category: %s" % category)
        print(format_series_table(subset, x_key="coverage"))

    def ari(category, coverage):
        return [
            row.ari
            for row in rows
            if row.configuration["category"] == category
            and row.configuration["coverage"] == coverage
        ][0]

    coverages = sorted({row.configuration["coverage"] for row in rows})
    for category in categories:
        # General trend: more coverage does not hurt, and full coverage beats none.
        assert ari(category, coverages[-1]) > ari(category, 0.0) + 0.05
        # Partial coverage already recovers a large share of the benefit (the
        # paper reaches its peak at 60% coverage thanks to the max-min
        # mechanism): at >= 60% coverage at least half of the none-to-full
        # improvement is realised.
        partial = [c for c in coverages if 0.5 <= c < 1.0]
        if partial:
            none_ari = ari(category, 0.0)
            full_ari = ari(category, coverages[-1])
            assert ari(category, partial[-1]) >= none_ari + 0.5 * (full_ari - none_ari) - 0.05
