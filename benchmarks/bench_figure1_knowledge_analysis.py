"""Benchmark / reproduction of Figure 1 (experiment E1).

Probability that at least one initialisation grid is formed by relevant
dimensions only, as a function of the number of labeled objects, for
several ``d_i / d`` ratios.  Uses the paper's example parameters
(d = 3000, p = 0.01, c = 3, g = 20, variance ratio 0.15).
"""

from __future__ import annotations

from repro.experiments.knowledge_analysis import run_figure1


def _run():
    return run_figure1(
        input_sizes=range(0, 21),
        relevant_fractions=(0.01, 0.02, 0.05, 0.10),
        n_dimensions=3000,
        p=0.01,
        grid_dimensions=3,
        n_grids=20,
        variance_ratio=0.15,
    )


def test_figure1_curves(benchmark):
    """Regenerate the Figure 1 probability curves."""
    result = benchmark(_run)
    print("\n=== Figure 1: P(at least one all-relevant grid) vs labeled objects ===")
    print(result.as_table())

    # Shape checks mirroring the paper's observations.
    five_percent = result.probabilities[result.relevant_fractions.index(0.05)]
    assert five_percent[result.input_sizes.index(5)] > 0.9, (
        "with di/d = 5%, five labeled objects should give a near-certain all-relevant grid"
    )
    one_percent = result.probabilities[result.relevant_fractions.index(0.01)]
    assert one_percent[result.input_sizes.index(5)] < five_percent[result.input_sizes.index(5)], (
        "labeled objects are less effective at lower di/d"
    )
    for row in result.probabilities:
        assert all(b >= a - 1e-9 for a, b in zip(row, row[1:])), "curves must be non-decreasing"
