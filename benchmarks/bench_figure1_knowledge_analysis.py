"""Benchmark / reproduction of Figure 1 (experiment E1).

Probability that at least one initialisation grid is formed by relevant
dimensions only, as a function of the number of labeled objects, for
several ``d_i / d`` ratios.  Thin wrapper over the registered
``figure1_knowledge_analysis`` scenario (paper parameters: d = 3000,
p = 0.01, c = 3, g = 20, variance ratio 0.15).
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure1_knowledge_analysis")


def test_figure1_curves(benchmark, bench_scale):
    """Regenerate the Figure 1 probability curves."""
    summary = benchmark(lambda: SCENARIO.run(bench_scale))
    print("\n=== Figure 1: P(at least one all-relevant grid) vs labeled objects ===")
    print(summary.table)

    # Shape checks mirroring the paper's observations.
    metrics = summary.metrics
    assert metrics["prob_size5_frac5"] > 0.9, (
        "with di/d = 5%, five labeled objects should give a near-certain all-relevant grid"
    )
    assert metrics["prob_size5_frac1"] < metrics["prob_size5_frac5"], (
        "labeled objects are less effective at lower di/d"
    )
    assert metrics["monotonic"] == 1.0, "curves must be non-decreasing"
