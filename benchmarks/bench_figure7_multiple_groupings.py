"""Benchmark / reproduction of Figure 7 (experiment E8): multiple groupings.

Two independent groupings concatenated dimension-wise; HARP, PROCLUS and
SSPC are evaluated against both ground truths, and SSPC is additionally
guided by knowledge from each grouping in turn.  The reproduced shape:
unsupervised algorithms recover at most one grouping (or neither), while
guided SSPC recovers whichever grouping its knowledge comes from.
"""

from __future__ import annotations

from repro.data.multigroup import make_multigroup_dataset
from repro.experiments.multiple_groupings import (
    format_multigrouping_table,
    run_multiple_groupings,
)


def _run(paper_scale: bool):
    if paper_scale:
        dataset = make_multigroup_dataset(
            n_objects=150,
            n_dimensions_per_grouping=1500,
            n_clusters=5,
            avg_cluster_dimensionality=30,
            random_state=12,
        )
        return run_multiple_groupings(dataset=dataset, input_size=5, n_repeats=3, random_state=12)
    dataset = make_multigroup_dataset(
        n_objects=120,
        n_dimensions_per_grouping=400,
        n_clusters=4,
        avg_cluster_dimensionality=8,
        random_state=12,
    )
    return run_multiple_groupings(
        dataset=dataset,
        avg_cluster_dimensionality=8,
        n_clusters=4,
        input_size=5,
        include_harp=True,
        include_proclus=True,
        n_repeats=1,
        random_state=12,
    )


def test_figure7_multiple_groupings(benchmark, paper_scale):
    """Regenerate the Figure 7 comparison."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Figure 7: ARI against the two possible groupings ===")
    print(format_multigrouping_table(rows))

    guided1 = [r for r in rows if r.algorithm == "SSPC" and r.guidance == "grouping 1"][0]
    guided2 = [r for r in rows if r.algorithm == "SSPC" and r.guidance == "grouping 2"][0]

    # The headline result: the supplied knowledge decides which grouping is found.
    assert guided1.ari_grouping1 > guided1.ari_grouping2 + 0.2
    assert guided2.ari_grouping2 > guided2.ari_grouping1 + 0.2
    assert guided1.ari_grouping1 > 0.5
    assert guided2.ari_grouping2 > 0.5

    # Unsupervised baselines cannot recover both groupings at once.
    for row in rows:
        if row.guidance == "none":
            assert min(row.ari_grouping1, row.ari_grouping2) < 0.5
