"""Benchmark / reproduction of Figure 7 (experiment E8): multiple groupings.

Two independent groupings concatenated dimension-wise; HARP, PROCLUS and
SSPC are evaluated against both ground truths, and SSPC is additionally
guided by knowledge from each grouping in turn.  The reproduced shape:
unsupervised algorithms recover at most one grouping (or neither), while
guided SSPC recovers whichever grouping its knowledge comes from.
Thin wrapper over the registered ``figure7_multiple_groupings`` scenario.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure7_multiple_groupings")


def test_figure7_multiple_groupings(benchmark, bench_scale):
    """Regenerate the Figure 7 comparison."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Figure 7: ARI against the two possible groupings ===")
    print(summary.table)

    # The headline result: the supplied knowledge decides which grouping is found.
    assert summary.metrics["guided1_margin"] > 0.2
    assert summary.metrics["guided2_margin"] > 0.2
