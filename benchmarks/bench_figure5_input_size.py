"""Benchmark / reproduction of Figure 5 (experiment E6): accuracy vs input size.

Coverage is fixed at 1.0 and the number of labeled items per cluster is
swept, for labeled objects only, labeled dimensions only, and both.  The
workload mimics a gene-expression matrix whose clusters use only 1% of
the dimensions.

Reduced scale (default): n = 150, d = 800, l_real = 8 (1% of d),
3 knowledge draws per point.
Paper scale: n = 150, d = 3000, l_real = 30, 10 knowledge draws.
"""

from __future__ import annotations

from repro.data.generator import make_projected_clusters
from repro.experiments.harness import format_series_table
from repro.experiments.knowledge_input import run_input_size_experiment


def _run(paper_scale: bool):
    if paper_scale:
        dataset = make_projected_clusters(
            n_objects=150, n_dimensions=3000, n_clusters=5,
            avg_cluster_dimensionality=30, random_state=10,
        )
        return run_input_size_experiment(
            input_sizes=(0, 2, 3, 4, 5, 6, 7, 8),
            dataset=dataset,
            n_knowledge_draws=10,
            random_state=10,
        )
    dataset = make_projected_clusters(
        n_objects=150, n_dimensions=800, n_clusters=5,
        avg_cluster_dimensionality=8, random_state=10,
    )
    return run_input_size_experiment(
        input_sizes=(0, 2, 4, 6),
        dataset=dataset,
        n_knowledge_draws=3,
        random_state=10,
    )


def test_figure5_input_size(benchmark, paper_scale):
    """Regenerate the Figure 5 accuracy-vs-input-size curves."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Figure 5: median ARI vs input size (coverage = 1, 1%-dimensional clusters) ===")
    for category in ("objects", "dimensions", "both"):
        subset = [row for row in rows if row.configuration["category"] == category]
        print("-- category: %s" % category)
        print(format_series_table(subset, x_key="input_size"))

    def ari(category, size):
        return [
            row.ari
            for row in rows
            if row.configuration["category"] == category and row.configuration["input_size"] == size
        ][0]

    sizes = sorted({row.configuration["input_size"] for row in rows})
    raw = ari("both", 0)
    largest = sizes[-1]
    # Knowledge improves accuracy markedly over the raw run for every category.
    for category in ("objects", "dimensions", "both"):
        assert ari(category, largest) > raw + 0.1
    # Labeled dimensions are especially effective at this extremely low
    # dimensionality (the paper's observation about input-kind complementarity).
    mid = sizes[1]
    assert ari("dimensions", mid) >= ari("objects", mid) - 0.1
    # With a healthy amount of knowledge the clustering is close to perfect.
    assert ari("dimensions", largest) > 0.7
    assert ari("both", largest) > 0.7
