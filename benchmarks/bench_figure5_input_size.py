"""Benchmark / reproduction of Figure 5 (experiment E6): accuracy vs input size.

Coverage is fixed at 1.0 and the number of labeled items per cluster is
swept, for labeled objects only, labeled dimensions only, and both.  The
workload mimics a gene-expression matrix whose clusters use only 1% of
the dimensions.  Thin wrapper over the registered ``figure5_input_size``
scenario.

Reduced scale (default): n = 150, d = 800, l_real = 8 (1% of d),
3 knowledge draws per point.
Paper scale: n = 150, d = 3000, l_real = 30, 10 knowledge draws.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure5_input_size")


def test_figure5_input_size(benchmark, bench_scale):
    """Regenerate the Figure 5 accuracy-vs-input-size curves."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Figure 5: median ARI vs input size (coverage = 1, 1%-dimensional clusters) ===")
    print(summary.table)

    series = {
        category: {float(size): ari for size, ari in curve.items()}
        for category, curve in summary.details["series"].items()
    }
    sizes = sorted(next(iter(series.values())))
    largest = sizes[-1]

    # Knowledge improves accuracy markedly over each category's raw run.
    for category in ("objects", "dimensions", "both"):
        assert series[category][largest] > series[category][0] + 0.1
    # Labeled dimensions are especially effective at this extremely low
    # dimensionality (the paper's observation about input-kind complementarity).
    mid = sizes[1]
    assert series["dimensions"][mid] >= series["objects"][mid] - 0.1
    # With a healthy amount of knowledge the clustering is close to perfect.
    assert series["dimensions"][largest] > 0.7
