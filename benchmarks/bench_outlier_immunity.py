"""Benchmark / reproduction of the Section 5.2 outlier-immunity experiment (E5).

Datasets with 0% to 25% outliers; the paper reports only a moderate
accuracy decrease and a detected-outlier count that closely tracks the
true count (the corresponding figure is omitted from the paper, so the
numbers here are the reproduced table).
"""

from __future__ import annotations

from repro.experiments.outlier_immunity import run_outlier_immunity


def _run(paper_scale: bool):
    if paper_scale:
        return run_outlier_immunity(
            outlier_fractions=(0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
            n_objects=1000,
            n_dimensions=100,
            n_clusters=5,
            l_real=10,
            n_repeats=10,
            random_state=2,
        )
    return run_outlier_immunity(
        outlier_fractions=(0.0, 0.10, 0.25),
        n_objects=400,
        n_dimensions=100,
        n_clusters=5,
        l_real=10,
        n_repeats=2,
        random_state=2,
    )


def test_outlier_immunity(benchmark, paper_scale):
    """Regenerate the outlier-immunity table."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Section 5.2: SSPC accuracy and outlier detection vs outlier fraction ===")
    print("%-18s %8s %14s %18s %18s" % ("outlier fraction", "ARI", "true outliers", "detected outliers", "outlier recall"))
    for row in rows:
        print(
            "%-18s %8.3f %14d %18d %18.3f"
            % (
                row.configuration["outlier_fraction"],
                row.ari,
                int(row.extra["true_outliers"]),
                int(row.extra["detected_outliers"]),
                row.extra["outlier_recall"],
            )
        )

    by_fraction = {row.configuration["outlier_fraction"]: row for row in rows}
    fractions = sorted(by_fraction)
    clean_ari = by_fraction[fractions[0]].ari
    dirty_ari = by_fraction[fractions[-1]].ari
    # Moderate accuracy decrease only.
    assert clean_ari > 0.8
    assert dirty_ari > clean_ari - 0.35
    # Detected outliers resemble the actual amount at the highest contamination.
    worst = by_fraction[fractions[-1]]
    true_outliers = worst.extra["true_outliers"]
    detected = worst.extra["detected_outliers"]
    assert 0.4 * true_outliers <= detected <= 2.5 * true_outliers
