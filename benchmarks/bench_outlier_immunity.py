"""Benchmark / reproduction of the Section 5.2 outlier-immunity experiment (E5).

Datasets with 0% to 25% outliers; the paper reports only a moderate
accuracy decrease and a detected-outlier count that closely tracks the
true count (the corresponding figure is omitted from the paper, so the
numbers here are the reproduced table).  Thin wrapper over the
registered ``outlier_immunity`` scenario.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("outlier_immunity")


def test_outlier_immunity(benchmark, bench_scale):
    """Regenerate the outlier-immunity table."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Section 5.2: SSPC accuracy and outlier detection vs outlier fraction ===")
    print(summary.table)

    # Moderate accuracy decrease only.
    assert summary.metrics["clean_ari"] > 0.8
    assert summary.metrics["ari_drop"] < 0.35
