"""Thin wrapper: the serving benchmark now lives in the library.

The measurement core moved to :mod:`repro.bench.perf_serving` so the
``repro-bench`` orchestrator (scenario ``serving``) and this script share
one implementation.  Run either::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario serving
"""

from __future__ import annotations

import sys

from repro.bench.perf_serving import main

if __name__ == "__main__":
    sys.exit(main())
