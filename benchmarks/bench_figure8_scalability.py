"""Benchmark / reproduction of Figure 8 (experiments E9-E10): scalability.

Total execution time of repeated runs of SSPC and PROCLUS with an
increasing number of objects (8a) and dimensions (8b).  The reproduced
claims are the *shapes*: close-to-linear growth along both axes and SSPC
speed comparable to PROCLUS (absolute seconds are hardware dependent).
"""

from __future__ import annotations

from repro.experiments.scalability import (
    format_scalability_table,
    linear_fit_quality,
    run_scalability,
)


def _run(paper_scale: bool):
    if paper_scale:
        return run_scalability(
            object_counts=(1000, 2000, 4000, 8000),
            dimension_counts=(100, 200, 400, 800),
            base_objects=1000,
            base_dimensions=100,
            n_repeats=10,
            random_state=13,
        )
    return run_scalability(
        object_counts=(200, 400, 800),
        dimension_counts=(50, 100, 200),
        base_objects=300,
        base_dimensions=50,
        l_real=5,
        n_repeats=2,
        random_state=13,
    )


def test_figure8_scalability(benchmark, paper_scale):
    """Regenerate the Figure 8 runtime scaling curves."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Figure 8: total runtime of repeated runs (SSPC vs PROCLUS) ===")
    print(format_scalability_table(rows))

    for axis in ("n_objects", "n_dimensions"):
        sspc_fit = linear_fit_quality(rows, "SSPC", axis)
        # Runtime grows with size and the growth is close to linear.  Wall
        # clock measurements on a shared machine are noisy, so the linearity
        # requirement is deliberately tolerant; the paper-scale run gives a
        # much cleaner fit.
        assert sspc_fit["slope"] > 0
        assert sspc_fit["r_squared"] > 0.6

        sspc_rows = sorted(
            [r for r in rows if r.algorithm == "SSPC" and r.axis == axis], key=lambda r: r.size
        )
        proclus_rows = sorted(
            [r for r in rows if r.algorithm == "PROCLUS" and r.axis == axis], key=lambda r: r.size
        )
        # Comparable speed: within an order of magnitude of PROCLUS at the
        # largest size (the paper reports the two as comparable).
        assert sspc_rows[-1].total_seconds < 20 * max(proclus_rows[-1].total_seconds, 1e-3)
