"""Benchmark / reproduction of Figure 8 (experiments E9-E10): scalability.

Total execution time of repeated runs of SSPC and PROCLUS with an
increasing number of objects (8a) and dimensions (8b).  The reproduced
claims are the *shapes*: close-to-linear growth along both axes and SSPC
speed comparable to PROCLUS (absolute seconds are hardware dependent).
Thin wrapper over the registered ``figure8_scalability`` scenario.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure8_scalability")


def test_figure8_scalability(benchmark, bench_scale):
    """Regenerate the Figure 8 runtime scaling curves."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Figure 8: total runtime of repeated runs (SSPC vs PROCLUS) ===")
    print(summary.table)

    metrics = summary.metrics
    for axis in ("objects", "dimensions"):
        # Runtime grows with size and the growth is close to linear.  Wall
        # clock measurements on a shared machine are noisy, so the linearity
        # requirement is deliberately tolerant; the paper-scale run gives a
        # much cleaner fit.
        assert metrics["sspc_%s_slope_positive" % axis] == 1.0
        assert metrics["sspc_%s_r_squared" % axis] > 0.6
        # Comparable speed: within an order of magnitude of PROCLUS at the
        # largest size (the paper reports the two as comparable).
        assert metrics["sspc_vs_proclus_%s" % axis] < 20
