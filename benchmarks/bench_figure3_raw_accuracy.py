"""Benchmark / reproduction of Figure 3 (experiment E3): raw accuracy.

Best-of-repeats ARI of SSPC (m and p variants), PROCLUS (correct ``l``),
HARP and CLARANS on datasets whose average cluster dimensionality sweeps
from 5% to 40% of ``d``, with no input knowledge.  Thin wrapper over the
registered ``figure3_raw_accuracy`` scenario.

Reduced scale (default): n = 400, d = 100, 2 repeats.
Paper scale (REPRO_BENCH_SCALE=paper): n = 1000, d = 100, 10 repeats.
"""

from __future__ import annotations

import numpy as np

from repro.bench import registry

SCENARIO = registry.get("figure3_raw_accuracy")


def test_figure3_raw_accuracy(benchmark, bench_scale):
    """Regenerate the Figure 3 accuracy-vs-dimensionality comparison."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)
    print("\n=== Figure 3: best raw ARI vs average cluster dimensionality (d = 100) ===")
    print(summary.table)

    series = summary.details["series"]

    def curve(prefix):
        for algorithm, values in series.items():
            if algorithm.startswith(prefix):
                return {float(l_key): ari for l_key, ari in values.items()}
        raise KeyError(prefix)

    sspc_m = curve("SSPC(m")
    proclus = curve("PROCLUS")
    clarans = curve("CLARANS")
    l_values = sorted(sspc_m)

    # Shape 1: projected algorithms beat the non-projected reference overall.
    assert np.mean(list(sspc_m.values())) > np.mean(list(clarans.values()))
    # Shape 2: SSPC holds up at the lowest dimensionality (5% of d), where it
    # has the mildest drop of the projected algorithms.
    lowest = l_values[0]
    assert sspc_m[lowest] >= proclus[lowest] - 0.05
    assert sspc_m[lowest] > 0.5
    # Shape 3: at moderate-to-high dimensionality every projected algorithm is strong.
    highest = l_values[-1]
    assert sspc_m[highest] > 0.8
