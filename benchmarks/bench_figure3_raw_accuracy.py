"""Benchmark / reproduction of Figure 3 (experiment E3): raw accuracy.

Best-of-repeats ARI of SSPC (m and p variants), PROCLUS (correct ``l``),
HARP and CLARANS on datasets whose average cluster dimensionality sweeps
from 5% to 40% of ``d``, with no input knowledge.

Reduced scale (default): n = 400, d = 100, 2 repeats.
Paper scale (REPRO_BENCH_SCALE=paper): n = 1000, d = 100, 10 repeats.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import format_series_table
from repro.experiments.raw_accuracy import run_raw_accuracy


def _run(paper_scale: bool):
    if paper_scale:
        return run_raw_accuracy(
            dimensionalities=(5, 10, 20, 30, 40),
            n_objects=1000,
            n_dimensions=100,
            n_clusters=5,
            n_repeats=10,
            random_state=0,
        )
    return run_raw_accuracy(
        dimensionalities=(5, 10, 20, 40),
        n_objects=400,
        n_dimensions=100,
        n_clusters=5,
        n_repeats=2,
        random_state=0,
    )


def test_figure3_raw_accuracy(benchmark, paper_scale):
    """Regenerate the Figure 3 accuracy-vs-dimensionality comparison."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)
    print("\n=== Figure 3: best raw ARI vs average cluster dimensionality (d = 100) ===")
    print(format_series_table(rows, x_key="l_real"))

    def series(prefix):
        return {
            row.configuration["l_real"]: row.ari
            for row in rows
            if row.algorithm.startswith(prefix)
        }

    sspc_m = series("SSPC(m")
    proclus = series("PROCLUS")
    clarans = series("CLARANS")
    l_values = sorted(sspc_m)

    # Shape 1: projected algorithms beat the non-projected reference overall.
    assert np.mean(list(sspc_m.values())) > np.mean(list(clarans.values()))
    # Shape 2: SSPC holds up at the lowest dimensionality (5% of d), where it
    # has the mildest drop of the projected algorithms.
    lowest = l_values[0]
    assert sspc_m[lowest] >= proclus[lowest] - 0.05
    assert sspc_m[lowest] > 0.5
    # Shape 3: at moderate-to-high dimensionality every projected algorithm is strong.
    highest = l_values[-1]
    assert sspc_m[highest] > 0.8
