"""Shared configuration for the benchmark harness.

Every module regenerates one table or figure of the paper (see DESIGN.md
for the experiment index).  Each benchmark both:

* times the experiment via ``pytest-benchmark`` (so regressions in the
  algorithms show up as timing changes), and
* prints the figure-style table of reproduced numbers, so running
  ``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
  results.

The paper-scale experiments (n = 1000 raw-accuracy sweeps, d = 3000
knowledge sweeps, 10 repeats each) take tens of minutes; the benchmarks
default to *reduced-scale* configurations that preserve the relevant
ratios (cluster dimensionality as a fraction of d, coverage, input sizes)
and finish in a few minutes.  Set the environment variable
``REPRO_BENCH_SCALE=paper`` to run the full paper-scale configuration.
"""

from __future__ import annotations

import os

import pytest

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "reduced").lower() == "paper"


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """Whether the full paper-scale configurations were requested."""
    return PAPER_SCALE


def pytest_report_header(config):
    scale = "paper" if PAPER_SCALE else "reduced"
    return "repro benchmark scale: %s (set REPRO_BENCH_SCALE=paper for full scale)" % scale
