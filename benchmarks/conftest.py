"""Shared configuration for the pytest-benchmark harness.

Every module regenerates one table or figure of the paper by running the
corresponding *registered scenario* (see :mod:`repro.bench.scenarios`)
through exactly the same plan / execute / aggregate pipeline as the
``repro-bench`` orchestrator, so the two paths cannot drift.  Each
benchmark both:

* times the experiment via ``pytest-benchmark`` (so regressions in the
  algorithms show up as timing changes), and
* prints the figure-style table of reproduced numbers, so running
  ``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
  results.

Scale resolution is centralized in :mod:`repro.bench.config`: the suite
runs at the ``reduced`` scale by default and at the full paper scale
with ``REPRO_BENCH_SCALE=paper`` (``repro-bench run --suite ...`` uses
the same resolution).
"""

from __future__ import annotations

import pytest

from repro.bench.config import resolve_scale

SCALE = resolve_scale()


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The resolved benchmark scale (``smoke`` / ``reduced`` / ``paper``)."""
    return SCALE


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """Whether the full paper-scale configurations were requested."""
    return SCALE == "paper"


def pytest_report_header(config):
    return (
        "repro benchmark scale: %s (set REPRO_BENCH_SCALE=paper for full scale)" % SCALE
    )
