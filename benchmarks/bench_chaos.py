"""Thin wrapper: the chaos benchmark lives in the library.

The fault-injection core is :mod:`repro.bench.chaos`, shared with the
``repro-bench`` orchestrator (scenario ``chaos``).  Run either::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario chaos
"""

from __future__ import annotations

import sys

from repro.bench.chaos import main

if __name__ == "__main__":
    sys.exit(main())
