"""Thin wrapper: the serving-load benchmark lives in the library.

The measurement core is :mod:`repro.bench.perf_serving_load` so the
``repro-bench`` orchestrator (scenario ``serving_load``) and this script
share one implementation.  Run either::

    PYTHONPATH=src python benchmarks/bench_serving_load.py --smoke
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario serving_load
"""

from __future__ import annotations

import sys

from repro.bench.perf_serving_load import main

if __name__ == "__main__":
    sys.exit(main())
