"""Thin wrapper: the assignment-engine micro-benchmark lives in the library.

The measurement core is :mod:`repro.bench.perf_assignment`, so the
``repro-bench`` orchestrator (scenario ``perf_assignment``) and this
script share one implementation.  Run either::

    PYTHONPATH=src python benchmarks/bench_perf_assignment.py --smoke
    PYTHONPATH=src python -m repro.bench run --suite smoke --scenario perf_assignment
"""

from __future__ import annotations

import sys

from repro.bench.perf_assignment import main

if __name__ == "__main__":
    sys.exit(main())
