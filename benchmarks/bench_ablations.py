"""Ablation benchmarks A1-A3 (design choices called out in DESIGN.md).

Not part of the paper's evaluation; these isolate the design decisions
the paper argues for — median-based representatives, grid-based
seed-group initialisation and the two threshold schemes.  Thin wrapper
over the registered ``ablations`` scenario (one task per ablation).
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("ablations")


def test_ablations(benchmark, bench_scale):
    """A1-A3: representatives, initialisation and threshold schemes."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Ablations A1-A3 (design choices) ===")
    print(summary.table)

    metrics = summary.metrics
    # A1: the median variant should not lose to the mean variant by a wide
    # margin on contaminated data (it is the robustness-motivated choice).
    assert metrics["representative_margin"] >= -0.1
    # A2: seed-group initialisation beats random full-space medoids.
    assert metrics["initialisation_margin"] >= 0.0
    # A3: both threshold schemes work on both global distributions.
    assert metrics["threshold_min_ari"] > 0.5
