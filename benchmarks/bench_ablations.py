"""Ablation benchmarks A1-A3 (design choices called out in DESIGN.md).

Not part of the paper's evaluation; these isolate the design decisions
the paper argues for — median-based representatives, grid-based
seed-group initialisation and the two threshold schemes.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    format_ablation_table,
    run_initialisation_ablation,
    run_representative_ablation,
    run_threshold_scheme_ablation,
)


def test_ablation_representative(benchmark, paper_scale):
    """A1: median vs mean representatives on data with outliers."""
    kwargs = dict(random_state=20)
    if paper_scale:
        kwargs.update(n_objects=1000, n_dimensions=100, n_repeats=5)
    else:
        kwargs.update(n_objects=400, n_dimensions=60, n_repeats=2)
    rows = benchmark.pedantic(
        lambda: run_representative_ablation(**kwargs), iterations=1, rounds=1
    )
    print("\n=== Ablation A1: representative statistic (15% outliers) ===")
    print(format_ablation_table(rows))
    by_variant = {row.variant: row.ari for row in rows}
    # The median variant should not lose to the mean variant by a wide margin
    # on contaminated data (it is the robustness-motivated choice).
    assert by_variant["median (paper)"] >= by_variant["mean (ablated)"] - 0.1


def test_ablation_initialisation(benchmark, paper_scale):
    """A2: seed-group initialisation vs random full-space medoids."""
    kwargs = dict(random_state=21)
    if paper_scale:
        kwargs.update(n_objects=600, n_dimensions=400, l_real=8, n_repeats=5)
    else:
        kwargs.update(n_objects=300, n_dimensions=150, l_real=6, n_repeats=2)
    rows = benchmark.pedantic(
        lambda: run_initialisation_ablation(**kwargs), iterations=1, rounds=1
    )
    print("\n=== Ablation A2: initialisation strategy (low-dimensional clusters) ===")
    print(format_ablation_table(rows))
    by_variant = {row.variant: row.ari for row in rows}
    assert by_variant["seed groups (paper)"] >= by_variant["random medoids (ablated)"]


def test_ablation_threshold_scheme(benchmark, paper_scale):
    """A3: m-scheme vs p-scheme under uniform and Gaussian globals."""
    kwargs = dict(random_state=22)
    if paper_scale:
        kwargs.update(n_objects=1000, n_dimensions=100, n_repeats=5)
    else:
        kwargs.update(n_objects=400, n_dimensions=60, n_repeats=2)
    rows = benchmark.pedantic(
        lambda: run_threshold_scheme_ablation(**kwargs), iterations=1, rounds=1
    )
    print("\n=== Ablation A3: threshold schemes across global distributions ===")
    print(format_ablation_table(rows))
    # Both schemes work on both distributions (Figure 3's observation that the
    # p scheme holds up even though the globals are not Gaussian).
    for row in rows:
        assert row.ari > 0.5
