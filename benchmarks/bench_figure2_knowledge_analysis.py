"""Benchmark / reproduction of Figure 2 (experiment E2).

Probability that at least one grid uses dimensions relevant to the target
cluster only, as a function of the number of labeled dimensions, for
several ``d_i / d`` ratios.  Thin wrapper over the registered
``figure2_knowledge_analysis`` scenario (d = 3000, k = 5, c = 3, g = 20).
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure2_knowledge_analysis")


def test_figure2_curves(benchmark, bench_scale):
    """Regenerate the Figure 2 probability curves."""
    summary = benchmark(lambda: SCENARIO.run(bench_scale))
    print("\n=== Figure 2: P(at least one exclusively-relevant grid) vs labeled dimensions ===")
    print(summary.table)

    metrics = summary.metrics
    # The paper's observation: labeled dimensions are more effective when the
    # cluster dimensionality is extremely low.
    assert metrics["low_dim_advantage"] >= 0.0
    assert metrics["prob_size5_frac1"] > 0.9

    # Complementarity with Figure 1: at di/d = 1% and small input sizes,
    # labeled dimensions beat labeled objects.
    assert metrics["dims_beat_objects_at3"] == 1.0
