"""Benchmark / reproduction of Figure 2 (experiment E2).

Probability that at least one grid uses dimensions relevant to the target
cluster only, as a function of the number of labeled dimensions, for
several ``d_i / d`` ratios (d = 3000, k = 5, c = 3, g = 20).
"""

from __future__ import annotations

from repro.experiments.knowledge_analysis import run_figure1, run_figure2


def _run():
    return run_figure2(
        input_sizes=range(0, 21),
        relevant_fractions=(0.01, 0.02, 0.05, 0.10),
        n_dimensions=3000,
        n_clusters=5,
        grid_dimensions=3,
        n_grids=20,
    )


def test_figure2_curves(benchmark):
    """Regenerate the Figure 2 probability curves."""
    result = benchmark(_run)
    print("\n=== Figure 2: P(at least one exclusively-relevant grid) vs labeled dimensions ===")
    print(result.as_table())

    one_percent = result.probabilities[result.relevant_fractions.index(0.01)]
    ten_percent = result.probabilities[result.relevant_fractions.index(0.10)]
    index_5 = result.input_sizes.index(5)
    # The paper's observation: labeled dimensions are more effective when the
    # cluster dimensionality is extremely low.
    assert one_percent[index_5] >= ten_percent[index_5]
    assert one_percent[index_5] > 0.9

    # Complementarity with Figure 1: at di/d = 1% and small input sizes,
    # labeled dimensions beat labeled objects.
    figure1 = run_figure1(input_sizes=[3], relevant_fractions=[0.01])
    assert one_percent[result.input_sizes.index(3)] > figure1.probabilities[0, 0]
