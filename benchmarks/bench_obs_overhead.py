#!/usr/bin/env python
"""Observability overhead gate (see repro.bench.perf_obs).

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
"""

import sys

from repro.bench.perf_obs import main

if __name__ == "__main__":
    sys.exit(main())
