"""Benchmark / reproduction of Figure 4 (experiment E4): parameter sensitivity.

On the l_real = 10 dataset, sweep PROCLUS's ``l`` parameter and SSPC's
``m`` / ``p`` parameters.  The paper's point: PROCLUS is accurate only
near the correct ``l`` while SSPC stays accurate across its whole
parameter range.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.parameter_sensitivity import run_parameter_sensitivity


def _run(paper_scale: bool):
    if paper_scale:
        return run_parameter_sensitivity(
            n_objects=1000,
            n_dimensions=100,
            n_clusters=5,
            l_real=10,
            n_repeats=5,
            random_state=1,
        )
    return run_parameter_sensitivity(
        n_objects=400,
        n_dimensions=100,
        n_clusters=5,
        l_real=10,
        proclus_l_values=(2, 6, 10, 14, 18),
        sspc_m_values=(0.1, 0.3, 0.5, 0.7, 0.9),
        sspc_p_values=(0.001, 0.01, 0.1, 0.2),
        n_repeats=2,
        random_state=1,
    )


def test_figure4_parameter_sensitivity(benchmark, paper_scale):
    """Regenerate the Figure 4 parameter-sensitivity comparison."""
    rows = benchmark.pedantic(_run, args=(paper_scale,), iterations=1, rounds=1)

    print("\n=== Figure 4: ARI under different parameter values (l_real = 10) ===")
    print("%-10s %-10s %8s" % ("algorithm", "value", "ARI"))
    for row in rows:
        print(
            "%-10s %-10s %8.3f"
            % (row.algorithm, str(row.configuration["value"]), row.ari)
        )

    sspc_m = [row.ari for row in rows if row.algorithm == "SSPC(m)"]
    sspc_p = [row.ari for row in rows if row.algorithm == "SSPC(p)"]
    proclus = [row.ari for row in rows if row.algorithm == "PROCLUS"]

    # SSPC stays accurate across the whole parameter range.
    assert min(sspc_m) > 0.6
    assert min(sspc_p) > 0.6
    # SSPC's spread across parameter values is no worse than PROCLUS's spread
    # across l values (robustness claim).
    assert (max(sspc_m) - min(sspc_m)) <= (max(proclus) - min(proclus)) + 0.1
    # PROCLUS peaks near the true l value.
    proclus_by_l = {
        row.configuration["value"]: row.ari for row in rows if row.algorithm == "PROCLUS"
    }
    best_l = max(proclus_by_l, key=proclus_by_l.get)
    assert abs(best_l - 10) <= 6
