"""Benchmark / reproduction of Figure 4 (experiment E4): parameter sensitivity.

On the l_real = 10 dataset, sweep PROCLUS's ``l`` parameter and SSPC's
``m`` / ``p`` parameters.  The paper's point: PROCLUS is accurate only
near the correct ``l`` while SSPC stays accurate across its whole
parameter range.  Thin wrapper over the registered
``figure4_parameter_sensitivity`` scenario.
"""

from __future__ import annotations

from repro.bench import registry

SCENARIO = registry.get("figure4_parameter_sensitivity")


def test_figure4_parameter_sensitivity(benchmark, bench_scale):
    """Regenerate the Figure 4 parameter-sensitivity comparison."""
    summary = benchmark.pedantic(lambda: SCENARIO.run(bench_scale), iterations=1, rounds=1)

    print("\n=== Figure 4: ARI under different parameter values (l_real = 10) ===")
    print(summary.table)

    metrics = summary.metrics
    # SSPC stays accurate across the whole parameter range.
    assert metrics["sspc_m_min_ari"] > 0.6
    assert metrics["sspc_p_min_ari"] > 0.6
    # SSPC's spread across parameter values is no worse than PROCLUS's spread
    # across l values (robustness claim).
    assert metrics["sspc_m_spread"] <= metrics["proclus_spread"] + 0.1
    # PROCLUS peaks near the true l value.
    assert abs(metrics["proclus_best_l"] - 10) <= 6
