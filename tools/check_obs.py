#!/usr/bin/env python
"""Lint: library code must speak through ``repro.obs``, not stdout/clocks.

A bare ``print(...)`` inside ``src/repro/`` library code bypasses the
structured event log (and corrupts the output of any CLI built on top);
a bare ``time.time()`` bypasses the injectable clock that keeps traces
and tests deterministic.  Library modules emit through
``repro.obs`` — ``obs.event`` / ``obs.log``-style hooks for messages,
``obs.wall_time`` / ``obs.monotonic`` for time.

Exempt, by design:

* ``src/repro/obs/`` — the observability package itself wraps the real
  clock and the report CLI prints;
* any ``cli.py`` / ``__main__.py`` — command-line front-ends own their
  stdout;
* ``bench/perf_*.py``, ``bench/chaos.py`` — benchmark report mains,
  invoked as scripts.

The check is AST-based (comments and strings never trip it).  Run from
the repository root (CI does)::

    python tools/check_obs.py
"""

from __future__ import annotations

import ast
import fnmatch
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SCAN_ROOT = "src/repro"

#: Glob patterns (relative to the repo root) exempt from the lint.
EXEMPT_PATTERNS = (
    "src/repro/obs/*",
    "src/repro/*/cli.py",
    "src/repro/*/__main__.py",
    "src/repro/__main__.py",
    "src/repro/bench/perf_*.py",
    "src/repro/bench/chaos.py",
)


def is_exempt(relative: str) -> bool:
    return any(fnmatch.fnmatch(relative, pattern) for pattern in EXEMPT_PATTERNS)


def scan_file(path: Path):
    """Yield ``(line, message)`` for every violation in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield node.lineno, "bare print() — emit via repro.obs or move to a CLI module"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            yield node.lineno, "time.time() — use repro.obs.wall_time() (injectable clock)"


def run() -> int:
    violations = []
    scanned = 0
    for path in sorted((REPO_ROOT / SCAN_ROOT).rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        if is_exempt(relative):
            continue
        scanned += 1
        for line, message in scan_file(path):
            violations.append("%s:%d: %s" % (relative, line, message))
    for violation in violations:
        print(violation)
    print(
        "checked %d library module(s): %d violation(s)" % (scanned, len(violations)),
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(run())
