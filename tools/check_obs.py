#!/usr/bin/env python
"""Lint: library code must speak through ``repro.obs``, not stdout/clocks.

A bare ``print(...)`` inside ``src/repro/`` library code bypasses the
structured event log (and corrupts the output of any CLI built on top);
a bare ``time.time()`` bypasses the injectable clock that keeps traces
and tests deterministic.  Library modules emit through
``repro.obs`` — ``obs.event`` / ``obs.log``-style hooks for messages,
``obs.wall_time`` / ``obs.monotonic`` for time.

Exempt, by design:

* ``src/repro/obs/`` — the observability package itself wraps the real
  clock and the report CLI prints;
* any ``cli.py`` / ``__main__.py`` — command-line front-ends own their
  stdout;
* ``bench/perf_*.py``, ``bench/chaos.py`` — benchmark report mains,
  invoked as scripts.

A second, complementary check guards against **metric-name drift**:
every metric name the library emits — ``obs.incr`` / ``obs.observe`` /
``obs.gauge`` literals and the ``repro_*`` Prometheus families — must
appear in the README's metric reference table.  Renaming a metric in
code without updating the table (or vice versa) fails CI.

Both checks are AST-based (comments and strings never trip the first).
Run from the repository root (CI does)::

    python tools/check_obs.py
"""

from __future__ import annotations

import ast
import fnmatch
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SCAN_ROOT = "src/repro"

#: Glob patterns (relative to the repo root) exempt from the lint.
EXEMPT_PATTERNS = (
    "src/repro/obs/*",
    "src/repro/*/cli.py",
    "src/repro/*/__main__.py",
    "src/repro/__main__.py",
    "src/repro/bench/perf_*.py",
    "src/repro/bench/chaos.py",
)


#: Files whose metric emissions are not part of the public contract
#: (bench probes, CLI front-ends) and so are skipped by the drift check.
METRIC_EXEMPT_PATTERNS = (
    "src/repro/*/cli.py",
    "src/repro/*/__main__.py",
    "src/repro/__main__.py",
    "src/repro/bench/*",
)

#: Module-hook spellings whose first argument names a metric.
METRIC_HOOKS = ("incr", "observe", "gauge")

#: Packages the scan must visit — a future path-scoping change that
#: silently dropped one of these would turn the lint into a no-op for
#: exactly the code it was extended to cover.
REQUIRED_SCANNED = (
    "src/repro/core/backends/__init__.py",
    "src/repro/core/assignment_engine.py",
    "src/repro/serving/index.py",
)


def is_exempt(relative: str) -> bool:
    return any(fnmatch.fnmatch(relative, pattern) for pattern in EXEMPT_PATTERNS)


def is_metric_exempt(relative: str) -> bool:
    return any(fnmatch.fnmatch(relative, pattern) for pattern in METRIC_EXEMPT_PATTERNS)


def _literal_metric(arg):
    """``("name", is_prefix)`` for a literal metric-name argument.

    Handles plain string constants and the ``"prefix.%s" % ...`` idiom
    (the part before the first ``%`` is checked as a prefix).
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if (
        isinstance(arg, ast.BinOp)
        and isinstance(arg.op, ast.Mod)
        and isinstance(arg.left, ast.Constant)
        and isinstance(arg.left.value, str)
    ):
        return arg.left.value.split("%", 1)[0], True
    return None


def collect_metric_names(path: Path):
    """Yield ``(name, is_prefix, line)`` for every metric the file emits.

    Covers ``*.incr/observe/gauge("name", ...)`` hook calls,
    ``writer.family("repro_...", ...)`` Prometheus family declarations,
    and ``write_histogram(writer, "repro_...", ...)`` call sites.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        candidate = None
        if isinstance(func, ast.Attribute) and func.attr in METRIC_HOOKS:
            candidate = _literal_metric(node.args[0])
        elif isinstance(func, ast.Attribute) and func.attr == "family":
            candidate = _literal_metric(node.args[0])
        elif (
            isinstance(func, ast.Name)
            and func.id == "write_histogram"
            and len(node.args) >= 2
        ):
            candidate = _literal_metric(node.args[1])
        if candidate is not None:
            yield candidate[0], candidate[1], node.lineno


def scan_file(path: Path):
    """Yield ``(line, message)`` for every violation in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield node.lineno, "bare print() — emit via repro.obs or move to a CLI module"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            yield node.lineno, "time.time() — use repro.obs.wall_time() (injectable clock)"


def run() -> int:
    violations = []
    scanned = 0
    scanned_paths = set()
    readme = (REPO_ROOT / "README.md").read_text()
    n_metrics = 0
    for path in sorted((REPO_ROOT / SCAN_ROOT).rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        if not is_exempt(relative):
            scanned += 1
            scanned_paths.add(relative)
            for line, message in scan_file(path):
                violations.append("%s:%d: %s" % (relative, line, message))
        if is_metric_exempt(relative):
            continue
        for name, is_prefix, line in collect_metric_names(path):
            n_metrics += 1
            if name not in readme:
                kind = "metric prefix" if is_prefix else "metric"
                violations.append(
                    "%s:%d: %s `%s` is emitted but missing from the README "
                    "metric reference table" % (relative, line, kind, name)
                )
    for required in REQUIRED_SCANNED:
        if required not in scanned_paths:
            violations.append(
                "%s: required module was not scanned — the lint's path scoping "
                "no longer covers it" % required
            )
    for violation in violations:
        print(violation)
    print(
        "checked %d library module(s), %d metric emission(s): %d violation(s)"
        % (scanned, n_metrics, len(violations)),
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(run())
