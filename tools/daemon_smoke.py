#!/usr/bin/env python
"""CI smoke test: boot the real ``repro-server`` daemon and exercise it.

End to end over an actual subprocess and actual sockets:

1. fit a small model and save it as an artifact directory;
2. boot ``python -m repro.server.cli`` on an ephemeral port and wait
   for the ``READY host=... port=...`` banner;
3. hit ``/healthz``, then ``/predict`` for every query point, and
   assert the daemon's labels are bit-identical to an in-process
   :class:`~repro.serving.index.ProjectedClusterIndex` over the same
   artifact;
4. SIGTERM the daemon and require a clean ``STOPPED`` exit within the
   timeout.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/daemon_smoke.py [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.sspc import SSPC  # noqa: E402
from repro.data.generator import make_projected_clusters  # noqa: E402
from repro.serving.artifact import load_artifact  # noqa: E402
from repro.serving.index import ProjectedClusterIndex  # noqa: E402

BOOT_TIMEOUT_S = 60.0
STOP_TIMEOUT_S = 30.0


def build_artifact(directory: Path) -> Path:
    dataset = make_projected_clusters(
        n_objects=240,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        random_state=1234,
    )
    model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(dataset.data)
    path = directory / "model"
    model.to_artifact().save(path)
    return path


def wait_ready(process: subprocess.Popen) -> tuple:
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                "daemon exited before READY:\n%s" % process.stderr.read()
            )
        sys.stdout.write(line)
        if line.startswith("READY"):
            fields = dict(part.split("=") for part in line.split()[1:])
            return fields["host"], int(fields["port"])
    raise SystemExit("daemon did not print READY within %.0fs" % BOOT_TIMEOUT_S)


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=15) as response:
        return json.loads(response.read())


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--n-queries", type=int, default=32)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="daemon-smoke-") as scratch:
        artifact = build_artifact(Path(scratch))
        queries = np.random.default_rng(5).normal(size=(args.n_queries, 40))
        expected = ProjectedClusterIndex(load_artifact(artifact)).predict(queries)

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server.cli",
                str(artifact),
                "--port",
                "0",
                "--workers",
                str(args.workers),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, (str(REPO_ROOT / "src"), os.environ.get("PYTHONPATH")))
                ),
            },
        )
        try:
            host, port = wait_ready(process)
            base = "http://%s:%d" % (host, port)

            health = get_json(base + "/healthz")
            assert health["status"] == "ok", health
            assert health["generation"] == 0, health
            print("healthz ok: %s" % health)

            labels = [
                post_json(base + "/predict", {"point": list(row)})["label"]
                for row in queries
            ]
            mismatches = int(np.sum(np.array(labels) != expected))
            assert mismatches == 0, (
                "%d/%d daemon labels differ from the in-process index"
                % (mismatches, len(labels))
            )
            print("predict ok: %d/%d labels bit-identical" % (len(labels), len(labels)))

            batch = post_json(base + "/predict", {"points": queries.tolist()})
            assert batch["labels"] == [int(label) for label in expected], (
                "batch labels differ from the in-process index"
            )
            print("batch predict ok")

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=STOP_TIMEOUT_S)
            sys.stdout.write(stdout)
            assert "STOPPED" in stdout, "daemon never printed STOPPED:\n%s" % stderr
            assert process.returncode == 0, (
                "daemon exited %d:\n%s" % (process.returncode, stderr)
            )
            print("shutdown ok (exit 0)")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
