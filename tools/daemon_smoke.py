#!/usr/bin/env python
"""CI smoke test: boot the real ``repro-server`` daemon and exercise it.

End to end over an actual subprocess and actual sockets:

1. fit a small model and save it as an artifact directory;
2. boot ``python -m repro.server.cli`` on an ephemeral port and wait
   for the ``READY host=... port=...`` banner;
3. hit ``/healthz``, then ``/predict`` for every query point, and
   assert the daemon's labels are bit-identical to an in-process
   :class:`~repro.serving.index.ProjectedClusterIndex` over the same
   artifact;
4. check the request-id contract: an inbound ``X-Request-Id`` is
   echoed back, a request without one gets a generated id, and even a
   404 response carries one;
5. scrape ``/metrics?format=prometheus`` and validate the exposition:
   every line parses, every histogram series has ascending ``le``
   bounds with monotone non-decreasing cumulative counts ending at a
   ``+Inf`` bucket equal to ``_count``, and the predict-route counts
   agree with the JSON ``/metrics`` telemetry snapshot;
6. optionally save ``/debug/tail_trace`` (``--tail-trace-out``, the
   nightly workflow uploads it as an artifact);
7. SIGTERM the daemon and require a clean ``STOPPED`` exit within the
   timeout.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/daemon_smoke.py [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.sspc import SSPC  # noqa: E402
from repro.data.generator import make_projected_clusters  # noqa: E402
from repro.serving.artifact import load_artifact  # noqa: E402
from repro.serving.index import ProjectedClusterIndex  # noqa: E402

BOOT_TIMEOUT_S = 60.0
STOP_TIMEOUT_S = 30.0


def build_artifact(directory: Path) -> Path:
    dataset = make_projected_clusters(
        n_objects=240,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        random_state=1234,
    )
    model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(dataset.data)
    path = directory / "model"
    model.to_artifact().save(path)
    return path


def wait_ready(process: subprocess.Popen) -> tuple:
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                "daemon exited before READY:\n%s" % process.stderr.read()
            )
        sys.stdout.write(line)
        if line.startswith("READY"):
            fields = dict(part.split("=") for part in line.split()[1:])
            return fields["host"], int(fields["port"])
    raise SystemExit("daemon did not print READY within %.0fs" % BOOT_TIMEOUT_S)


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=15) as response:
        return json.loads(response.read())


def get_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=15) as response:
        return response.read().decode("utf-8")


def post_json(url: str, payload: dict, headers: dict = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read()), dict(response.headers)


def check_request_ids(base: str) -> None:
    """The id contract: inbound honored, absent minted, errors tagged."""
    point = {"point": [0.0] * 40}
    _, headers = post_json(base + "/predict", point, {"X-Request-Id": "smoke-42"})
    assert headers.get("X-Request-Id") == "smoke-42", headers
    _, headers = post_json(base + "/predict", point)
    generated = headers.get("X-Request-Id")
    assert generated, "no X-Request-Id on a plain predict: %s" % headers
    try:
        urllib.request.urlopen(base + "/no/such/route", timeout=15)
    except urllib.error.HTTPError as error:
        assert error.code == 404, error.code
        assert error.headers.get("X-Request-Id"), "404 carried no X-Request-Id"
    else:
        raise AssertionError("unknown route did not 404")
    print("request ids ok: inbound echoed, generated=%s, 404 tagged" % generated)


def parse_prometheus(text: str):
    """``{(name, labels): value}`` for every sample line; raises on junk."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        assert body and value, "unparseable sample line: %r" % line
        if "{" in body:
            name, _, rest = body.partition("{")
            assert rest.endswith("}"), "bad label block: %r" % line
            labels = tuple(
                sorted(
                    (pair.split("=", 1)[0], pair.split("=", 1)[1].strip('"'))
                    for pair in rest[:-1].split(",")
                    if pair
                )
            )
        else:
            name, labels = body, ()
        samples[(name, labels)] = float(value)
    return samples


def check_prometheus(base: str) -> None:
    """Scrape the text exposition and cross-check it against JSON."""
    telemetry = get_json(base + "/metrics")["telemetry"]
    samples = parse_prometheus(get_text(base + "/metrics?format=prometheus"))

    # Group histogram bucket series and validate cumulative monotony.
    series = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        le = dict(labels)["le"]
        rest = tuple(pair for pair in labels if pair[0] != "le")
        bound = float("inf") if le == "+Inf" else float(le)
        series.setdefault((name, rest), []).append((bound, value))
    assert series, "no histogram bucket series in the scrape"
    for (name, rest), buckets in series.items():
        bounds = [bound for bound, _ in buckets]
        counts = [count for _, count in buckets]
        assert bounds == sorted(bounds), "unsorted le in %s%s" % (name, rest)
        assert bounds[-1] == float("inf"), "no +Inf bucket in %s%s" % (name, rest)
        assert counts == sorted(counts), "non-monotone buckets in %s%s" % (name, rest)
        total = samples[(name[: -len("_bucket")] + "_count", rest)]
        assert counts[-1] == total, "+Inf bucket != _count for %s%s" % (name, rest)

    # The predict series froze when predict traffic stopped: the scrape
    # must agree exactly with the JSON snapshot taken just before it.
    key = tuple(sorted((("route", "predict"), ("status_class", "2xx"))))
    json_side = telemetry["latency_seconds"]["predict"]["2xx"]
    count = samples[("repro_request_latency_seconds_count", key)]
    assert count == json_side["count"], (count, json_side["count"])
    prom_cumulative = [
        count for _, count in sorted(series[("repro_request_latency_seconds_bucket", key)])
    ]
    assert prom_cumulative == [float(c) for c in json_side["buckets"]["cumulative"]], (
        "bucket counts diverge between Prometheus and JSON"
    )
    assert samples[("repro_requests_total", key)] == (
        telemetry["requests_total"]["predict"]["2xx"]
    )
    print(
        "prometheus ok: %d samples, %d histogram series, predict counts match JSON"
        % (len(samples), len(series))
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--n-queries", type=int, default=32)
    parser.add_argument(
        "--tail-trace-out",
        default=None,
        help="save the daemon's /debug/tail_trace JSON here before shutdown",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="daemon-smoke-") as scratch:
        artifact = build_artifact(Path(scratch))
        queries = np.random.default_rng(5).normal(size=(args.n_queries, 40))
        expected = ProjectedClusterIndex(load_artifact(artifact)).predict(queries)

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server.cli",
                str(artifact),
                "--port",
                "0",
                "--workers",
                str(args.workers),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, (str(REPO_ROOT / "src"), os.environ.get("PYTHONPATH")))
                ),
            },
        )
        try:
            host, port = wait_ready(process)
            base = "http://%s:%d" % (host, port)

            health = get_json(base + "/healthz")
            assert health["status"] == "ok", health
            assert health["generation"] == 0, health
            print("healthz ok: %s" % health)

            labels = [
                post_json(base + "/predict", {"point": list(row)})[0]["label"]
                for row in queries
            ]
            mismatches = int(np.sum(np.array(labels) != expected))
            assert mismatches == 0, (
                "%d/%d daemon labels differ from the in-process index"
                % (mismatches, len(labels))
            )
            print("predict ok: %d/%d labels bit-identical" % (len(labels), len(labels)))

            batch, _ = post_json(base + "/predict", {"points": queries.tolist()})
            assert batch["labels"] == [int(label) for label in expected], (
                "batch labels differ from the in-process index"
            )
            print("batch predict ok")

            check_request_ids(base)
            check_prometheus(base)

            if args.tail_trace_out:
                trace = get_json(base + "/debug/tail_trace")
                out = Path(args.tail_trace_out)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(json.dumps(trace))
                print(
                    "tail trace saved: %s (%d events)"
                    % (out, len(trace.get("traceEvents", [])))
                )

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=STOP_TIMEOUT_S)
            sys.stdout.write(stdout)
            assert "STOPPED" in stdout, "daemon never printed STOPPED:\n%s" % stderr
            assert process.returncode == 0, (
                "daemon exited %d:\n%s" % (process.returncode, stderr)
            )
            print("shutdown ok (exit 0)")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
