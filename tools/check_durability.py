#!/usr/bin/env python
"""Lint: durability-path modules must write through the atomic helpers.

Every module that persists state the rest of the system depends on —
model artifacts, stream checkpoints, benchmark run records, and the
reliability layer itself — must route writes through
``repro.reliability.atomic`` (temp + fsync + rename).  A bare
``open(path, "w")`` or ``Path.write_text`` on one of these paths can
tear under a crash and silently corrupt the store, which is exactly the
failure class the reliability layer exists to rule out.

The check is AST-based: it flags any ``open(...)`` call with a
write/append/create mode and any ``.write_text(...)`` /
``.write_bytes(...)`` attribute call inside the scanned modules.
``repro/reliability/atomic.py`` itself is exempt — it is the one place
allowed to touch file handles directly.

Run from the repository root (CI does)::

    python tools/check_durability.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Modules whose writes must be atomic.
DURABILITY_PATHS = (
    "src/repro/serving/artifact.py",
    "src/repro/stream/checkpoint.py",
    "src/repro/bench/store.py",
    "src/repro/reliability",
)

#: The one module allowed to open file handles for writing.
EXEMPT = ("src/repro/reliability/atomic.py",)

WRITE_MODE_CHARS = set("wax+")
FORBIDDEN_ATTRIBUTES = ("write_text", "write_bytes")


def _open_mode(call: ast.Call) -> str:
    """The literal mode argument of an ``open`` call, or '' if unknown."""
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return ""  # dynamic mode: treat as suspect


def scan_file(path: Path):
    """Yield ``(line, message)`` for every non-atomic write in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if not mode or WRITE_MODE_CHARS & set(mode):
                yield node.lineno, "open(..., %r) — use repro.reliability.atomic" % mode
        elif isinstance(func, ast.Attribute) and func.attr in FORBIDDEN_ATTRIBUTES:
            yield node.lineno, ".%s(...) — use repro.reliability.atomic" % func.attr


def collect_targets():
    for entry in DURABILITY_PATHS:
        path = REPO_ROOT / entry
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.is_file():
            yield path


def run() -> int:
    exempt = {REPO_ROOT / entry for entry in EXEMPT}
    violations = []
    scanned = 0
    for path in collect_targets():
        if path in exempt:
            continue
        scanned += 1
        for line, message in scan_file(path):
            violations.append("%s:%d: %s" % (path.relative_to(REPO_ROOT), line, message))
    for violation in violations:
        print(violation)
    print(
        "checked %d durability module(s): %d violation(s)" % (scanned, len(violations)),
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(run())
